#include "exp/workload.h"

#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "fs/filesystem.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "runner/contended_runner.h"
#include "sim/simulation.h"

namespace wlgen::exp {

namespace {

std::unique_ptr<fsmodel::FileSystemModel> make_model(ModelKind kind, sim::Simulation& sim) {
  switch (kind) {
    case ModelKind::nfs: return std::make_unique<fsmodel::NfsModel>(sim);
    case ModelKind::local: return std::make_unique<fsmodel::LocalDiskModel>(sim);
    case ModelKind::wholefile: return std::make_unique<fsmodel::WholeFileCacheModel>(sim);
  }
  throw std::logic_error("make_model: bad kind");
}

}  // namespace

WorkloadOutput run_workload(const WorkloadConfig& config) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  auto model = make_model(config.model, simulation);
  if (config.tune_model) config.tune_model(*model);
  config.traffic.validate();
  if (config.traffic.faults.any()) {
    traffic::install_faults(simulation, *model, config.traffic.faults);
  }

  core::FscConfig fsc_config;
  fsc_config.num_users = config.num_users;
  fsc_config.seed = config.seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig usim_config = config.usim;
  usim_config.num_users = config.num_users;
  usim_config.sessions_per_user = config.sessions_per_user;
  usim_config.seed = config.seed;
  if (config.traffic.arrivals) {
    usim_config.arrival_times_us = std::make_shared<const std::vector<std::vector<double>>>(
        traffic::assign_arrivals(*config.traffic.arrivals, config.num_users, config.seed));
  }
  usim_config.churn = config.traffic.faults.churns;

  core::Population population = config.population;
  if (population.groups.empty()) population = core::default_population();

  core::UserSimulator usim(simulation, fsys, *model, manifest, population, usim_config);
  usim.run();

  const core::UsageAnalyzer analyzer(usim.log());
  WorkloadOutput out;
  out.response_per_byte_us = analyzer.response_per_byte_us();
  out.access_size = analyzer.access_size_stats();
  out.response_us = analyzer.response_stats();
  out.sessions = analyzer.sessions();
  out.per_category = analyzer.per_category_usage();
  out.per_op = analyzer.per_op_stats();
  out.total_ops = usim.total_ops();
  out.simulated_us = simulation.now();
  out.model_stats = model->stats_summary();
  out.log = usim.log();
  return out;
}

std::vector<ContendedSweepPoint> contended_response_sweep(const ContendedSweepConfig& config) {
  runner::ContendedConfig contended;
  for (std::size_t users = 1; users <= config.max_users; ++users) {
    contended.user_points.push_back(users);
  }
  contended.replications = config.replications;
  contended.threads = config.threads;
  contended.seed = config.seed;
  contended.usim.sessions_per_user = config.sessions_per_user;
  contended.population = config.population;
  // One ModelKind mapping for the whole file: a kind make_model doesn't
  // know throws, instead of leaving a null factory for the runner's NFS
  // default to paper over.
  contended.model_factory = [kind = config.model](sim::Simulation& sim) {
    return make_model(kind, sim);
  };
  contended.tune_model = config.tune_model;

  runner::ContendedRunner run(std::move(contended));
  const runner::ContendedResult result = run.run();

  std::vector<ContendedSweepPoint> out;
  out.reserve(result.points.size());
  for (const auto& point : result.points) {
    out.push_back({point.users, point.stats.response_per_byte_us(), point.response_per_byte});
  }
  return out;
}

const WorkloadOutput& characterisation_run(std::size_t sessions, std::uint64_t seed) {
  // Figures 5.3-5.5 and the smoothing ablation all project this one run;
  // memoise it per (sessions, seed) so the harness simulates it once.  The
  // mutex guards only the future map: the first requester of a key computes
  // outside the lock, later same-key requesters block on the shared future,
  // and different keys proceed in parallel.
  using Output = std::shared_ptr<const WorkloadOutput>;
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, std::uint64_t>, std::shared_future<Output>> cache;

  std::promise<Output> promise;
  std::shared_future<Output> future;
  bool compute = false;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = cache.try_emplace(std::make_pair(sessions, seed));
    if (inserted) {
      it->second = promise.get_future().share();
      compute = true;
    }
    future = it->second;
  }
  if (compute) {
    try {
      WorkloadConfig config;
      config.num_users = 1;
      config.sessions_per_user = sessions;
      config.seed = seed;
      promise.set_value(std::make_shared<const WorkloadOutput>(run_workload(config)));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  // The shared_ptr lives in the cached future for the process lifetime, so
  // the reference stays valid; a failed compute rethrows for every waiter.
  return *future.get();
}

}  // namespace wlgen::exp
