#include "exp/artifacts.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <system_error>

#include "util/strings.h"
#include "util/svg.h"

namespace wlgen::exp {

std::string artifact_dir(const std::string& explicit_dir) {
  if (!explicit_dir.empty()) return explicit_dir;
  const char* env = std::getenv("WLGEN_OUT");
  return env != nullptr && *env != '\0' ? env : "artifacts";
}

namespace {

std::string write_resolved(const std::string& dir, const std::string& filename,
                           const std::string& content) {
  const std::string path = dir + "/" + filename;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "warning: cannot create artifact directory '" << dir << "': " << ec.message()
              << " — dropping " << path << "\n";
    return {};
  }
  try {
    util::write_text_file(path, content);
  } catch (const std::exception& e) {
    std::cerr << "warning: artifact write failed: " << e.what() << "\n";
    return {};
  }
  return path;
}

}  // namespace

std::string write_artifact(const std::string& dir, const std::string& name,
                           const std::string& content) {
  return write_resolved(dir, util::slugify_filename(name), content);
}

std::string write_artifact_verbatim(const std::string& dir, const std::string& name,
                                    const std::string& content) {
  return write_resolved(dir, name, content);
}

}  // namespace wlgen::exp
