#include "exp/result.h"

#include <limits>
#include <stdexcept>

#include "stats/smoothing.h"

namespace wlgen::exp {

namespace {

/// Non-finite numbers serialize as JSON null (JSON has no NaN literal);
/// map them back so dump -> parse -> dump is the identity.
double number_or_nan(const util::JsonValue& v) {
  return v.is_null() ? std::numeric_limits<double>::quiet_NaN() : v.as_number();
}

}  // namespace

ResultSeries& ExperimentResult::add_series(const std::string& name, std::vector<double> xs,
                                           std::vector<double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("ExperimentResult::add_series: xs/ys size mismatch for '" +
                                name + "'");
  }
  for (auto& s : series) {
    if (s.name == name) {
      s.xs = std::move(xs);
      s.ys = std::move(ys);
      return s;
    }
  }
  series.push_back(ResultSeries{name, std::move(xs), std::move(ys), {}});
  return series.back();
}

void ExperimentResult::set_scalar(const std::string& name, double value) {
  for (auto& [k, v] : scalars) {
    if (k == name) {
      v = value;
      return;
    }
  }
  scalars.emplace_back(name, value);
}

const ResultSeries* ExperimentResult::find_series(const std::string& name) const {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const double* ExperimentResult::find_scalar(const std::string& name) const {
  for (const auto& [k, v] : scalars) {
    if (k == name) return &v;
  }
  return nullptr;
}

util::JsonValue ExperimentResult::to_json() const {
  using util::JsonValue;
  JsonValue doc = JsonValue::make_object();
  doc.set("x_label", x_label);
  doc.set("y_label", y_label);

  JsonValue series_json = JsonValue::make_array();
  for (const auto& s : series) {
    JsonValue one = JsonValue::make_object();
    one.set("name", s.name);
    if (!s.color.empty()) one.set("color", s.color);
    JsonValue xs = JsonValue::make_array();
    for (const double x : s.xs) xs.push_back(x);
    JsonValue ys = JsonValue::make_array();
    for (const double y : s.ys) ys.push_back(y);
    one.set("xs", std::move(xs));
    one.set("ys", std::move(ys));
    series_json.push_back(std::move(one));
  }
  doc.set("series", std::move(series_json));

  JsonValue scalars_json = JsonValue::make_object();
  for (const auto& [k, v] : scalars) scalars_json.set(k, v);
  doc.set("scalars", std::move(scalars_json));

  JsonValue notes_json = JsonValue::make_array();
  for (const auto& n : notes) notes_json.push_back(n);
  doc.set("notes", std::move(notes_json));
  return doc;
}

ExperimentResult ExperimentResult::from_json(const util::JsonValue& doc) {
  ExperimentResult out;
  out.x_label = doc.at("x_label").as_string();
  out.y_label = doc.at("y_label").as_string();
  for (const auto& one : doc.at("series").as_array()) {
    ResultSeries s;
    s.name = one.at("name").as_string();
    if (const auto* color = one.find("color")) s.color = color->as_string();
    for (const auto& x : one.at("xs").as_array()) s.xs.push_back(number_or_nan(x));
    for (const auto& y : one.at("ys").as_array()) s.ys.push_back(number_or_nan(y));
    if (s.xs.size() != s.ys.size()) {
      throw std::runtime_error("ExperimentResult::from_json: xs/ys size mismatch for '" +
                               s.name + "'");
    }
    out.series.push_back(std::move(s));
  }
  for (const auto& [k, v] : doc.at("scalars").as_object()) {
    out.scalars.emplace_back(k, number_or_nan(v));
  }
  for (const auto& n : doc.at("notes").as_array()) out.notes.push_back(n.as_string());
  return out;
}

void add_histogram_series(ExperimentResult& result, const stats::Histogram& histogram,
                          std::size_t smooth_window) {
  const std::vector<double> centers = histogram.centers();
  result.add_series("before smoothing", centers, histogram.counts()).color = "#9ecae1";
  const stats::Histogram smoothed = stats::smooth_histogram(
      histogram, stats::SmoothingKind::moving_average, static_cast<double>(smooth_window));
  result.add_series("after smoothing", centers, smoothed.counts()).color = "#d62728";

  double before = 0.0, after = 0.0;
  for (const double c : histogram.counts()) before += c;
  for (const double c : smoothed.counts()) after += c;
  result.set_scalar("smoothed_mass_ratio", before > 0.0 ? after / before : 1.0);
}

}  // namespace wlgen::exp
