// Tests for the determinism linter (src/tools/lint/): one positive and one
// negative fixture per rule in the committed table, both escape hatches
// (per-path allowlists and inline `wlgen-lint: allow(...)` markers), the
// exit-code contract of run_lint, and — the real gate — that the committed
// src/ tree is clean under the table.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/lint.h"
#include "tools/lint/lint_rules.h"

namespace wlgen::lint {
namespace {

namespace fs = std::filesystem;

/// Lints an inline fixture as if it lived at `path` inside src/.
std::vector<Violation> lint_snippet(const std::string& path, const std::string& source,
                                    const std::string& companion_header = "") {
  return lint_source(path, path, source, default_rules(), companion_header);
}

bool has_rule(const std::vector<Violation>& violations, const std::string& rule) {
  for (const auto& v : violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer: comments and string literals never trip rules.
// ---------------------------------------------------------------------------

TEST(LintStrip, RemovesCommentsAndStringsButKeepsLineStructure) {
  const std::string source =
      "int a; // steady_clock in a comment\n"
      "/* rand( in a\n"
      "   block comment */ int b;\n"
      "const char* s = \"random_device\";\n"
      "char c = '\\'';\n"
      "int d;\n";
  const auto lines = strip_comments_and_strings(source);
  ASSERT_EQ(lines.size(), 7u);  // trailing entry for the final newline
  EXPECT_EQ(lines[0], "int a; ");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], "  int b;");
  EXPECT_EQ(lines[3], "const char* s =  ;");
  EXPECT_EQ(lines[4], "char c =  ;");
  EXPECT_EQ(lines[5], "int d;");
}

TEST(LintStrip, ProseInCommentsDoesNotTripAnyRule) {
  const std::string source =
      "// think time (already folded into schedule_next_op's delay)\n"
      "/* a steady_clock, rand(, random_device, reinterpret_cast tour */\n"
      "const char* msg = \"uses system_clock and memcpy( internally\";\n";
  EXPECT_TRUE(lint_snippet("core/fixture.cpp", source).empty());
}

TEST(LintAllowMarkers, ParsesSingleAndMultiRuleMarkers) {
  const auto markers = allow_markers(
      "int a;\n"
      "int b; // wlgen-lint: allow(wall-clock)\n"
      "int c; // wlgen-lint: allow(raw-rand, byte-pun)\n");
  ASSERT_EQ(markers.size(), 2u);
  EXPECT_TRUE(markers.at(2).count("wall-clock"));
  EXPECT_TRUE(markers.at(3).count("raw-rand"));
  EXPECT_TRUE(markers.at(3).count("byte-pun"));
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

TEST(LintWallClock, FlagsSteadyClockInSimPath) {
  const auto violations = lint_snippet(
      "sim/fixture.cpp", "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "wall-clock");
  EXPECT_EQ(violations[0].line, 1u);
}

TEST(LintWallClock, FlagsBareTimeCallButNotMemberOrSuffixedNames) {
  EXPECT_TRUE(has_rule(lint_snippet("core/fixture.cpp", "time_t t = time(nullptr);\n"),
                       "wall-clock"));
  // issue_time(...) and x.time(...) are simulation accessors, not libc time().
  EXPECT_TRUE(lint_snippet("core/fixture.cpp",
                           "double a = issue_time(1);\ndouble b = clock.time();\n")
                  .empty());
}

TEST(LintWallClock, OutsideSimDirsAndOnAllowlistedPoolIsClean) {
  const std::string source = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_snippet("obs/fixture.cpp", source).empty());
  EXPECT_TRUE(lint_snippet("runner/pool.cpp", source).empty());
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForAndBeginOverUnorderedContainers) {
  const std::string source =
      "std::unordered_map<std::uint64_t, Inode> inodes_;\n"
      "void f() {\n"
      "  for (const auto& [id, node] : inodes_) use(node);\n"
      "  auto it = inodes_.begin();\n"
      "}\n";
  const auto violations = lint_snippet("fs/fixture.cpp", source);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].rule, "unordered-iter");
  EXPECT_EQ(violations[0].line, 3u);
  EXPECT_EQ(violations[1].line, 4u);
}

TEST(LintUnorderedIter, OrderedMapAndLookupOnlyUseAreClean) {
  const std::string source =
      "std::map<int, int> sorted_;\n"
      "std::unordered_map<int, int> index_;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : sorted_) use(v);\n"
      "  index_.at(3);\n"
      "  index_[4] = 5;\n"
      "}\n";
  EXPECT_TRUE(lint_snippet("runner/fixture.cpp", source).empty());
}

TEST(LintUnorderedIter, SeesDeclarationsFromCompanionHeader) {
  const std::string header = "std::unordered_map<int, int> open_files_;\n";
  const std::string source = "void f() { for (auto& [fd, file] : open_files_) use(file); }\n";
  EXPECT_TRUE(has_rule(lint_snippet("fs/fixture.cpp", source, header), "unordered-iter"));
  // Without the header's declarations the identifier is unknown — clean.
  EXPECT_TRUE(lint_snippet("fs/fixture.cpp", source).empty());
}

// ---------------------------------------------------------------------------
// raw-rand
// ---------------------------------------------------------------------------

TEST(LintRawRand, FlagsRandAndRandomDeviceEverywhereButUtilRng) {
  EXPECT_TRUE(has_rule(lint_snippet("dist/fixture.cpp", "int r = rand();\n"), "raw-rand"));
  EXPECT_TRUE(has_rule(lint_snippet("obs/fixture.cpp", "std::random_device rd;\n"),
                       "raw-rand"));
  EXPECT_TRUE(lint_snippet("util/rng.cpp", "std::random_device entropy;\n").empty());
}

TEST(LintRawRand, SeededEngineNamesAreClean) {
  // mt19937_64 seeded from the Rng tree is the blessed idiom; only the
  // entropy sources themselves are hazards.
  EXPECT_TRUE(lint_snippet("dist/fixture.cpp",
                           "std::mt19937_64 engine(seed);\nuint64_t r = rng.draw();\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// byte-pun
// ---------------------------------------------------------------------------

TEST(LintBytePun, FlagsReinterpretCastAndMemcpyInSimPaths) {
  EXPECT_TRUE(has_rule(
      lint_snippet("stats/fixture.cpp",
                   "auto bits = *reinterpret_cast<const std::uint64_t*>(&value);\n"),
      "byte-pun"));
  EXPECT_TRUE(has_rule(
      lint_snippet("runner/fixture.cpp", "std::memcpy(&bits, &value, sizeof bits);\n"),
      "byte-pun"));
}

TEST(LintBytePun, CodecAndCallbackStorageAreAllowlisted) {
  const std::string source = "std::memcpy(&bits, &value, sizeof bits);\n";
  EXPECT_TRUE(lint_snippet("core/log_sink.cpp", source).empty());
  EXPECT_TRUE(lint_snippet("sim/callback.h",
                           "#pragma once\nauto* fn = reinterpret_cast<Fn*>(storage);\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// float-stats
// ---------------------------------------------------------------------------

TEST(LintFloatStats, FlagsFloatTypeAndLiteralOnlyInStatsFiles) {
  EXPECT_TRUE(has_rule(lint_snippet("stats/fixture.cpp", "float sum = 0;\n"),
                       "float-stats"));
  EXPECT_TRUE(has_rule(lint_snippet("runner/stats.cpp", "double x = 1.5f;\n"),
                       "float-stats"));
  // Outside stats accumulation files the rule does not apply.
  EXPECT_TRUE(lint_snippet("fsmodel/fixture.cpp", "float ratio = 0;\n").empty());
  // Doubles are the required idiom.
  EXPECT_TRUE(lint_snippet("stats/fixture.cpp", "double sum = 1.5;\n").empty());
}

// ---------------------------------------------------------------------------
// pragma-once
// ---------------------------------------------------------------------------

TEST(LintPragmaOnce, HeaderMustOpenWithPragmaOnce) {
  const auto violations = lint_snippet("core/fixture.h", "struct S {};\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "pragma-once");
  EXPECT_EQ(violations[0].line, 1u);
}

TEST(LintPragmaOnce, LeadingCommentsAreFineAndCppFilesAreExempt) {
  EXPECT_TRUE(lint_snippet("core/fixture.h",
                           "// banner comment\n\n#pragma once\nstruct S {};\n")
                  .empty());
  EXPECT_TRUE(lint_snippet("core/fixture.cpp", "struct S {};\n").empty());
}

// ---------------------------------------------------------------------------
// Inline escape hatch
// ---------------------------------------------------------------------------

TEST(LintInlineAllow, SuppressesExactlyTheNamedRuleOnTheLine) {
  const std::string allowed =
      "auto t = std::chrono::steady_clock::now();  // wlgen-lint: allow(wall-clock)\n";
  EXPECT_TRUE(lint_snippet("runner/fixture.cpp", allowed).empty());

  // A marker for a different rule does not suppress, and neither does a
  // marker on a neighbouring line.
  const std::string wrong_rule =
      "auto t = std::chrono::steady_clock::now();  // wlgen-lint: allow(raw-rand)\n";
  EXPECT_TRUE(has_rule(lint_snippet("runner/fixture.cpp", wrong_rule), "wall-clock"));
  const std::string wrong_line =
      "// wlgen-lint: allow(wall-clock)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(has_rule(lint_snippet("runner/fixture.cpp", wrong_line), "wall-clock"));
}

// ---------------------------------------------------------------------------
// Diagnostics + exit-code contract
// ---------------------------------------------------------------------------

TEST(LintContract, ViolationRendersFileLineRuleMessage) {
  const auto violations =
      lint_snippet("sim/fixture.cpp", "int x;\nauto t = std::chrono::system_clock::now();\n");
  ASSERT_EQ(violations.size(), 1u);
  const std::string rendered = violations[0].render();
  EXPECT_EQ(rendered.rfind("sim/fixture.cpp:2: wall-clock: ", 0), 0u) << rendered;
}

TEST(LintContract, RunLintExitCodesOnSeededAndCleanTrees) {
  const fs::path root = fs::temp_directory_path() / "wlgen_lint_test_tree";
  fs::remove_all(root);
  fs::create_directories(root / "core");
  {
    std::ofstream out(root / "core" / "clean.cpp");
    out << "int answer() { return 42; }\n";
  }
  EXPECT_EQ(run_lint(root.string(), default_rules()), 0);
  {
    std::ofstream out(root / "core" / "seeded.cpp");
    out << "#include <ctime>\n"
        << "double wall() { return static_cast<double>(time(nullptr)); }\n";
  }
  EXPECT_EQ(run_lint(root.string(), default_rules()), 1);
  fs::remove_all(root);
}

TEST(LintContract, LintTreeThrowsOnMissingRoot) {
  EXPECT_THROW(lint_tree("/nonexistent/wlgen-lint-root", default_rules()),
               std::runtime_error);
}

TEST(LintContract, RuleTableRendersEveryRuleId) {
  const std::string table = render_rule_table();
  for (const auto& rule : default_rules()) {
    EXPECT_NE(table.find(rule.id), std::string::npos) << rule.id;
  }
}

// ---------------------------------------------------------------------------
// The committed tree is clean — the acceptance gate for `wlgen lint`.
// ---------------------------------------------------------------------------

#ifdef WLGEN_SOURCE_DIR
TEST(LintTree, CommittedSourceTreeIsClean) {
  const TreeReport report =
      lint_tree(std::string(WLGEN_SOURCE_DIR) + "/src", default_rules());
  for (const auto& violation : report.violations) {
    ADD_FAILURE() << violation.render();
  }
  // A clean pass over an empty walk would be vacuous: the committed tree
  // has >100 translation units and headers.
  EXPECT_GT(report.files_scanned, 100u);
}
#endif

}  // namespace
}  // namespace wlgen::lint
