// Streaming log pipeline: binary codec, spill sink, k-way merge reader and
// the text-streaming adapters (DESIGN.md "Streaming log pipeline").
#include "core/log_sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/usage_log.h"

namespace wlgen::core {
namespace {

OpRecord make_record(std::uint32_t user, double issue_us, double response_us,
                     std::uint64_t bytes = 512) {
  OpRecord r;
  r.issue_time_us = issue_us;
  r.response_us = response_us;
  r.user = user;
  r.session = user * 2 + 1;
  r.op = fsmodel::FsOpType::read;
  r.category = {FileType::regular, FileOwner::notes, UseMode::read_write};
  r.requested_bytes = bytes;
  r.actual_bytes = bytes;
  r.file_id = 7000 + user;
  r.file_size = 4096;
  return r;
}

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("wlgen_log_sink_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(RecordCodec, RoundTripsEveryFieldBitExact) {
  OpRecord r = make_record(42, 123.456789012345678, 9.000000000000002e-3);
  r.op = fsmodel::FsOpType::creat;
  r.category = {FileType::directory, FileOwner::other, UseMode::temp};
  r.requested_bytes = 0xDEADBEEFCAFEull;
  r.actual_bytes = 0x123456789ABCull;
  r.file_id = 0xFFFFFFFFFFFFFFFFull;
  r.file_size = 1;

  unsigned char buffer[kSpillRecordBytes];
  encode_record(r, buffer);
  const OpRecord d = decode_record(buffer);

  // Doubles travel as raw IEEE bits: compare representations, not values.
  EXPECT_EQ(std::memcmp(&d.issue_time_us, &r.issue_time_us, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&d.response_us, &r.response_us, sizeof(double)), 0);
  EXPECT_EQ(d.user, r.user);
  EXPECT_EQ(d.session, r.session);
  EXPECT_EQ(d.op, r.op);
  EXPECT_EQ(d.category, r.category);
  EXPECT_EQ(d.requested_bytes, r.requested_bytes);
  EXPECT_EQ(d.actual_bytes, r.actual_bytes);
  EXPECT_EQ(d.file_id, r.file_id);
  EXPECT_EQ(d.file_size, r.file_size);
}

TEST(RecordCodec, PreservesNonFiniteAndDenormalDoubles) {
  for (double value : {0.0, -0.0, 5e-324, std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::quiet_NaN()}) {
    OpRecord r = make_record(1, value, value);
    unsigned char buffer[kSpillRecordBytes];
    encode_record(r, buffer);
    const OpRecord d = decode_record(buffer);
    EXPECT_EQ(std::memcmp(&d.issue_time_us, &r.issue_time_us, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&d.response_us, &r.response_us, sizeof(double)), 0);
  }
}

TEST(SpillSink, SingleRunRoundTrip) {
  const std::string dir = temp_dir("single");
  SpillSink sink(dir, "shard000000", 1024);
  std::vector<OpRecord> records;
  for (std::uint32_t u = 0; u < 5; ++u) {
    for (int i = 0; i < 7; ++i) {
      records.push_back(make_record(u, 100.0 * i + u, 3.5 * i));
      sink.append(records.back());
    }
  }
  sink.close();
  ASSERT_EQ(sink.runs().size(), 1u);
  EXPECT_EQ(sink.records_written(), records.size());
  EXPECT_EQ(sink.runs()[0].bytes,
            kSpillHeaderBytes + records.size() * kSpillRecordBytes);

  auto reader = open_spilled_log(sink.runs());
  const UsageLog log = materialize(*reader);

  // Ground truth: the exact merge contract (stable sort by time then user).
  std::vector<OpRecord> expected = records;
  std::stable_sort(expected.begin(), expected.end(), [](const auto& a, const auto& b) {
    if (a.issue_time_us != b.issue_time_us) return a.issue_time_us < b.issue_time_us;
    return a.user < b.user;
  });
  ASSERT_EQ(log.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(log.records()[i].issue_time_us, expected[i].issue_time_us);
    EXPECT_EQ(log.records()[i].user, expected[i].user);
    EXPECT_EQ(log.records()[i].file_id, expected[i].file_id);
  }
  std::filesystem::remove_all(dir);
}

TEST(SpillSink, CutsRunsOnlyAtUserBoundaries) {
  const std::string dir = temp_dir("boundaries");
  // Tiny buffer so nearly every user boundary cuts a run — but a single
  // user's burst (longer than the buffer) must still stay in one run.
  SpillSink sink(dir, "s", 4);
  for (int i = 0; i < 11; ++i) sink.append(make_record(0, i, 1.0));  // > buffer
  for (std::uint32_t u = 1; u < 6; ++u) {
    for (int i = 0; i < 3; ++i) sink.append(make_record(u, i, 1.0));
  }
  sink.close();
  ASSERT_GE(sink.runs().size(), 2u);

  // No user may appear in two runs.
  std::vector<std::uint32_t> owner_run(16, UINT32_MAX);
  for (std::size_t run_index = 0; run_index < sink.runs().size(); ++run_index) {
    RunFileReader reader(sink.runs()[run_index]);
    OpRecord r;
    while (reader.next(r)) {
      if (owner_run[r.user] == UINT32_MAX) {
        owner_run[r.user] = static_cast<std::uint32_t>(run_index);
      }
      EXPECT_EQ(owner_run[r.user], run_index) << "user " << r.user << " straddles runs";
    }
  }
  EXPECT_EQ(sink.records_written(), 11u + 5u * 3u);
  std::filesystem::remove_all(dir);
}

TEST(MergeLogReader, HandlesZeroAndOneInput) {
  std::vector<std::unique_ptr<LogReader>> none;
  MergeLogReader empty(std::move(none));
  OpRecord r;
  EXPECT_FALSE(empty.next(r));

  UsageLog log;
  log.append(make_record(3, 1.0, 2.0));
  log.append(make_record(3, 5.0, 2.0));
  std::vector<std::unique_ptr<LogReader>> one;
  one.push_back(std::make_unique<MemoryLogReader>(log));
  MergeLogReader single(std::move(one));
  ASSERT_TRUE(single.next(r));
  EXPECT_EQ(r.issue_time_us, 1.0);
  ASSERT_TRUE(single.next(r));
  EXPECT_EQ(r.issue_time_us, 5.0);
  EXPECT_FALSE(single.next(r));
}

TEST(MergeLogReader, MergesWithEmptyInputsAndTieBreaksByUser) {
  // Inputs 0 and 2 are empty; 1 and 3 tie on issue_time everywhere, so the
  // user index decides — exactly the merge_user_logs contract.
  UsageLog a;
  a.append(make_record(7, 10.0, 1.0));
  a.append(make_record(7, 20.0, 1.0));
  UsageLog b;
  b.append(make_record(2, 10.0, 1.0));
  b.append(make_record(2, 20.0, 1.0));
  UsageLog empty_log;

  std::vector<std::unique_ptr<LogReader>> inputs;
  inputs.push_back(std::make_unique<MemoryLogReader>(empty_log));
  inputs.push_back(std::make_unique<MemoryLogReader>(a));
  inputs.push_back(std::make_unique<MemoryLogReader>(empty_log));
  inputs.push_back(std::make_unique<MemoryLogReader>(b));
  MergeLogReader merge(std::move(inputs));

  std::vector<std::uint32_t> users;
  OpRecord r;
  while (merge.next(r)) users.push_back(r.user);
  EXPECT_EQ(users, (std::vector<std::uint32_t>{2, 7, 2, 7}));
}

TEST(MergeLogReader, PreservesWithinUserOrderOnEqualTimestamps) {
  // Same (time, user) repeatedly in ONE input: input order must survive —
  // the stable-sort half of the merge contract.
  UsageLog log;
  for (std::uint64_t i = 0; i < 6; ++i) log.append(make_record(4, 50.0, 1.0, 100 + i));
  std::vector<std::unique_ptr<LogReader>> inputs;
  inputs.push_back(std::make_unique<MemoryLogReader>(log));
  MergeLogReader merge(std::move(inputs));
  OpRecord r;
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(merge.next(r));
    EXPECT_EQ(r.requested_bytes, 100 + i);
  }
  EXPECT_FALSE(merge.next(r));
}

TEST(MergeLogReader, ManyInputsMatchGlobalStableSort) {
  std::mt19937 rng(1992);
  std::vector<UsageLog> logs(9);
  std::vector<OpRecord> all;
  for (std::uint32_t input = 0; input < logs.size(); ++input) {
    double t = 0.0;
    const int count = static_cast<int>(rng() % 40);  // some inputs empty
    for (int i = 0; i < count; ++i) {
      t += static_cast<double>(rng() % 5);  // nondecreasing, frequent ties
      const OpRecord r = make_record(input, t, 1.0, all.size());
      logs[input].append(r);
      all.push_back(r);
    }
  }
  std::vector<std::unique_ptr<LogReader>> inputs;
  for (const auto& log : logs) inputs.push_back(std::make_unique<MemoryLogReader>(log));
  MergeLogReader merge(std::move(inputs));

  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.issue_time_us != b.issue_time_us) return a.issue_time_us < b.issue_time_us;
    return a.user < b.user;
  });
  OpRecord r;
  for (const auto& expected : all) {
    ASSERT_TRUE(merge.next(r));
    EXPECT_EQ(r.issue_time_us, expected.issue_time_us);
    EXPECT_EQ(r.user, expected.user);
    EXPECT_EQ(r.requested_bytes, expected.requested_bytes);
  }
  EXPECT_FALSE(merge.next(r));
}

TEST(RunFileReader, RejectsBadMagicAndTruncation) {
  const std::string dir = temp_dir("corrupt");
  SpillSink sink(dir, "x", 64);
  for (int i = 0; i < 10; ++i) sink.append(make_record(0, i, 1.0));
  sink.close();
  ASSERT_EQ(sink.runs().size(), 1u);
  SpillRun run = sink.runs()[0];

  // Truncate the file mid-record.
  std::filesystem::resize_file(run.path, run.bytes - 7);
  {
    RunFileReader reader(run);
    OpRecord r;
    EXPECT_THROW({ while (reader.next(r)) {} }, std::runtime_error);
  }

  // Corrupt the magic.
  {
    std::FILE* f = std::fopen(run.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
  }
  EXPECT_THROW(RunFileReader{run}, std::runtime_error);

  SpillRun missing = run;
  missing.path += ".nope";
  EXPECT_THROW(RunFileReader{missing}, std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(TextAdapters, WriteLogTextMatchesSerialize) {
  UsageLog log;
  for (std::uint32_t u = 0; u < 3; ++u) {
    log.append(make_record(u, 0.1 + u * 1e-9, 1234.5678901234567));
  }
  std::ostringstream out;
  MemoryLogReader reader(log);
  const std::uint64_t written = write_log_text(reader, out);
  EXPECT_EQ(written, log.size());
  EXPECT_EQ(out.str(), log.serialize());
}

TEST(TextAdapters, ParseLogTextRoundTrips) {
  UsageLog log;
  log.append(make_record(0, 1.5, 2.5));
  log.append(make_record(9, 3.25, 0.125, 0));
  const std::string text = log.serialize();

  MemorySink sink;
  parse_log_text(text, sink);
  const UsageLog parsed = sink.take_log();
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed.records()[i].issue_time_us, log.records()[i].issue_time_us);
    EXPECT_EQ(parsed.records()[i].user, log.records()[i].user);
    EXPECT_EQ(parsed.records()[i].actual_bytes, log.records()[i].actual_bytes);
  }
}

TEST(Analyzer, ReaderAndLogConstructionAgree) {
  UsageLog log;
  std::mt19937 rng(7);
  for (int i = 0; i < 200; ++i) {
    OpRecord r = make_record(rng() % 4, i * 10.0, 1.0 + (rng() % 100));
    if (i % 3 == 0) r.op = fsmodel::FsOpType::write;
    if (i % 7 == 0) r.op = fsmodel::FsOpType::open;
    log.append(r);
  }
  UsageAnalyzer from_log(log);
  MemoryLogReader reader(log);
  UsageAnalyzer from_reader(reader);

  EXPECT_EQ(from_log.op_count(), from_reader.op_count());
  EXPECT_EQ(from_log.response_stats().mean(), from_reader.response_stats().mean());
  EXPECT_EQ(from_log.access_size_stats().mean(), from_reader.access_size_stats().mean());
  EXPECT_EQ(from_log.response_per_byte_us(), from_reader.response_per_byte_us());
}

}  // namespace
}  // namespace wlgen::core
