// Tests for the observability layer (src/obs/): the metrics registry's
// per-kind merge rules and exact-text/JSON serialization, the bounded trace
// ring, the thread-local stage-trace slot, and — the headline contract —
// that the merged obs counters are bit-identical for every shard/thread
// count in all three runner modes, and that turning tracing on never
// changes a digest.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/presets.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "runner/contended_runner.h"
#include "runner/pool.h"
#include "runner/sharded_runner.h"
#include "scenario/run.h"
#include "scenario/spec.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/version.h"

namespace wlgen::obs {
namespace {

// --- registry ---------------------------------------------------------------

TEST(Registry, MergeRulesPerKind) {
  Registry a, b;
  a.add_counter("events", 10);
  a.add_gauge_max("high_water", 7);
  a.add_sum("service_us", 1.5);
  b.add_counter("events", 32);
  b.add_gauge_max("high_water", 3);
  b.add_sum("service_us", 2.25);
  b.add_counter("only_in_b", 1);

  a.merge(b);
  ASSERT_EQ(a.metrics().size(), 4u);
  EXPECT_EQ(a.metrics()[0].count, 42u);        // counter: sum
  EXPECT_EQ(a.metrics()[1].count, 7u);         // gauge_max: max
  EXPECT_DOUBLE_EQ(a.metrics()[2].value, 3.75);  // sum: add
  EXPECT_EQ(a.metrics()[3].name, "only_in_b");   // unseen appends in b's order
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  registry.add_counter("x", 1);
  EXPECT_THROW(registry.add_sum("x", 1.0), std::invalid_argument);
  Registry other;
  other.add_gauge_max("x", 1);
  EXPECT_THROW(registry.merge(other), std::invalid_argument);
}

TEST(Registry, StableTextSkipsUnstableMetrics) {
  Registry registry;
  registry.add_counter("stable.count", 3);
  registry.add_counter("pool.busy_ns", 12345, /*stable=*/false);
  registry.add_sum("stable.sum", 0.5);
  const std::string text = registry.stable_text();
  EXPECT_NE(text.find("stable.count 3\n"), std::string::npos);
  EXPECT_NE(text.find("stable.sum 0.5\n"), std::string::npos);
  EXPECT_EQ(text.find("pool.busy_ns"), std::string::npos);
}

TEST(Registry, JsonRoundTripsThroughUtilJson) {
  Registry registry;
  registry.add_counter("sim.events", 14526);
  registry.add_sum("ops.read.response_sum_us", 3361768.6936741807);
  registry.add_counter("pool.jobs", 4, /*stable=*/false);

  const util::JsonValue parsed = util::parse_json(registry.to_json().dump());
  EXPECT_DOUBLE_EQ(parsed.at("metrics").at("sim.events").as_number(), 14526.0);
  EXPECT_DOUBLE_EQ(parsed.at("metrics").at("ops.read.response_sum_us").as_number(),
                   3361768.6936741807);
  EXPECT_DOUBLE_EQ(parsed.at("timing").at("pool.jobs").as_number(), 4.0);
  EXPECT_EQ(parsed.at("metrics").find("pool.jobs"), nullptr);
}

TEST(OpTally, AddMergeExport) {
  core::OpRecord read;
  read.op = fsmodel::FsOpType::read;
  read.response_us = 10.0;
  read.actual_bytes = 512;
  OpTally a, b;
  a.add(read);
  b.add(read);
  b.add(read);
  a.merge(b);
  EXPECT_EQ(a.total_ops(), 3u);

  Registry registry;
  a.export_into(registry);
  // Only op types that occurred export (no zero-noise rows).
  const std::string text = registry.stable_text();
  EXPECT_NE(text.find("ops.read.count 3\n"), std::string::npos);
  EXPECT_NE(text.find("ops.read.bytes 1536\n"), std::string::npos);
  EXPECT_EQ(text.find("ops.write"), std::string::npos);
}

// --- trace ring -------------------------------------------------------------

TraceEvent event_at(double ts, std::uint32_t name_id) {
  TraceEvent e;
  e.ts_us = ts;
  e.name_id = name_id;
  e.dur_us = 1.0;
  return e;
}

TEST(TraceRing, KeepsTrailingWindowAndCountsDrops) {
  TraceRing ring(3);
  const std::uint32_t id = ring.intern("op");
  for (int i = 0; i < 5; ++i) ring.push(event_at(i, id));
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto ordered = ring.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_DOUBLE_EQ(ordered.front().ts_us, 2.0);  // oldest surviving
  EXPECT_DOUBLE_EQ(ordered.back().ts_us, 4.0);
}

TEST(TraceRing, DisabledRingDropsEverything) {
  TraceRing ring;  // capacity 0
  EXPECT_FALSE(ring.enabled());
  ring.push(event_at(0, 0));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(TraceRing, AppendGrowsCapacityAndRemapsNames) {
  TraceRing a(2), b(2);
  a.push(event_at(1.0, a.intern("alpha")));
  b.push(event_at(2.0, b.intern("beta")));
  b.push(event_at(3.0, b.intern("alpha")));  // shared name, different id in b
  a.append(b);
  EXPECT_EQ(a.capacity(), 4u);  // budgets sum: merging never evicts
  const auto ordered = a.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(a.names().at(ordered[0].name_id), "alpha");
  EXPECT_EQ(a.names().at(ordered[1].name_id), "beta");
  EXPECT_EQ(a.names().at(ordered[2].name_id), "alpha");
}

TEST(RingShare, SplitsBudgetDeterministically) {
  EXPECT_EQ(ring_share(100, 4), 25u);
  EXPECT_EQ(ring_share(3, 8), 1u);   // non-zero budget never rounds to zero
  EXPECT_EQ(ring_share(0, 8), 0u);   // zero budget stays off
}

TEST(StageTraceSlot, ScopedInstallRestores) {
  ASSERT_EQ(stage_trace_slot(), nullptr);
  TraceRing outer(4), inner(4);
  {
    ScopedStageTrace a(&outer);
    EXPECT_EQ(stage_trace_slot(), &outer);
    {
      ScopedStageTrace b(&inner);
      EXPECT_EQ(stage_trace_slot(), &inner);
    }
    EXPECT_EQ(stage_trace_slot(), &outer);
  }
  EXPECT_EQ(stage_trace_slot(), nullptr);
}

TEST(ChromeTrace, EmitsLoadableJson) {
  TraceRing ring(8);
  TraceEvent e = event_at(5.0, ring.intern("read"));
  e.track = 1;
  e.user = 1;
  e.session = 0;
  ring.push(e);
  TraceGroup group;
  group.label = "test · ops";
  group.ring = &ring;
  group.by_session = true;
  const util::JsonValue doc = util::parse_json(chrome_trace_json({group}));
  const util::JsonValue& events = doc.at("traceEvents");
  // The op span, its session span, and the process/thread metadata records.
  EXPECT_GE(events.as_array().size(), 3u);
}

// --- build provenance + rng draw counting -----------------------------------

TEST(Version, ReportsBuildInfo) {
  const util::BuildInfo& info = util::build_info();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_NE(util::version_line().find("wlgen "), std::string::npos);
}

TEST(RngDraws, CountsUniformPathDraws) {
  util::RngStream rng(7, "obs/test");
  EXPECT_EQ(rng.uniform_draws(), 0u);
  for (int i = 0; i < 300; ++i) rng.uniform01();
  EXPECT_EQ(rng.uniform_draws(), 300u);
}

// --- pool accounting --------------------------------------------------------

TEST(PoolObs, AccountsJobsAndSpans) {
  runner::PoolObs obs;
  obs.record_spans = true;
  runner::drain_pool(6, 2, [&]() -> runner::PoolJob {
    return [](std::size_t, const std::atomic<bool>&) {
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    };
  }, &obs);
  EXPECT_EQ(obs.workers.size(), 2u);
  EXPECT_EQ(obs.jobs(), 6u);
  EXPECT_EQ(obs.spans.size(), 6u);
  EXPECT_GT(obs.busy_ns(), 0u);
  std::uint64_t per_worker_jobs = 0;
  for (const auto& w : obs.workers) per_worker_jobs += w.jobs;
  EXPECT_EQ(per_worker_jobs, 6u);
}

// --- the headline invariance: merged obs counters --------------------------

ObsConfig collecting_obs() {
  ObsConfig obs;
  obs.metrics_file = "-";  // any non-empty value turns collection on
  return obs;
}

ObsConfig tracing_obs() {
  ObsConfig obs = collecting_obs();
  obs.trace_file = "-";
  obs.trace_events = 4096;
  return obs;
}

runner::RunnerConfig sharded_config(std::size_t shards, std::size_t threads) {
  runner::RunnerConfig config;
  config.num_users = 8;
  config.shards = shards;
  config.threads = threads;
  config.seed = 2024;
  config.usim.sessions_per_user = 3;
  config.population = core::mixed_population(0.5);
  config.obs = collecting_obs();
  return config;
}

TEST(ShardedObs, StableMetricsInvariantAcrossShardsAndThreads) {
  const std::string baseline =
      runner::ShardedRunner(sharded_config(1, 1)).run().registry.stable_text();
  EXPECT_FALSE(baseline.empty());
  for (std::size_t shards : {4u, 8u}) {
    for (std::size_t threads : {1u, 4u, 8u}) {
      const auto result = runner::ShardedRunner(sharded_config(shards, threads)).run();
      EXPECT_EQ(result.registry.stable_text(), baseline)
          << shards << " shards, " << threads << " threads";
    }
  }
}

TEST(ShardedObs, TracingNeverChangesResults) {
  runner::RunnerConfig off = sharded_config(4, 4);
  off.obs = ObsConfig{};
  const auto untraced = runner::ShardedRunner(std::move(off)).run();

  runner::RunnerConfig on = sharded_config(4, 4);
  on.obs = tracing_obs();
  const auto traced = runner::ShardedRunner(std::move(on)).run();

  ASSERT_EQ(traced.log.size(), untraced.log.size());
  EXPECT_EQ(traced.log.serialize(), untraced.log.serialize());
  EXPECT_EQ(traced.stats.response_us().mean(), untraced.stats.response_us().mean());
  EXPECT_TRUE(traced.trace.enabled());
  EXPECT_GT(traced.trace.ops.pushed() + traced.trace.stages.pushed(), 0u);
}

runner::ContendedConfig contended_config(std::size_t threads) {
  runner::ContendedConfig config;
  config.user_points = {1, 2, 3};
  config.replications = 2;
  config.threads = threads;
  config.seed = 2024;
  config.usim.sessions_per_user = 3;
  config.population = core::mixed_population(0.5);
  config.obs = collecting_obs();
  return config;
}

TEST(ContendedObs, StableMetricsInvariantAcrossThreads) {
  const std::string baseline =
      runner::ContendedRunner(contended_config(1)).run().registry.stable_text();
  EXPECT_FALSE(baseline.empty());
  for (std::size_t threads : {4u, 8u}) {
    const auto result = runner::ContendedRunner(contended_config(threads)).run();
    EXPECT_EQ(result.registry.stable_text(), baseline) << threads << " threads";
  }
}

TEST(ContendedObs, TracingNeverChangesPointStats) {
  runner::ContendedConfig off = contended_config(4);
  off.obs = ObsConfig{};
  const auto untraced = runner::ContendedRunner(std::move(off)).run();

  runner::ContendedConfig on = contended_config(4);
  on.obs = tracing_obs();
  const auto traced = runner::ContendedRunner(std::move(on)).run();

  ASSERT_EQ(traced.points.size(), untraced.points.size());
  for (std::size_t i = 0; i < traced.points.size(); ++i) {
    EXPECT_EQ(traced.points[i].stats.response_us().mean(),
              untraced.points[i].stats.response_us().mean());
    EXPECT_EQ(traced.points[i].total_ops, untraced.points[i].total_ops);
  }
  EXPECT_TRUE(traced.trace.enabled());
}

// --- scenario layer ---------------------------------------------------------

constexpr const char* kScenario = R"(
[scenario]
name = obs-test
mode = contended
seed = 7

[workload]
users = 1:2:1
sessions = 3

[contended]
replications = 2

[model]
name = nfs
)";

TEST(ScenarioObs, ObsTextInvariantAndDigestUnchanged) {
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_text(kScenario);

  scenario::RunOptions plain;
  plain.threads = 2;
  const scenario::ScenarioOutcome untraced = scenario::run_scenario(spec, plain);
  EXPECT_TRUE(untraced.obs_text.empty());

  const std::string dir = ::testing::TempDir();
  std::string baseline;
  for (std::size_t threads : {1u, 4u, 8u}) {
    scenario::RunOptions options;
    options.threads = threads;
    options.metrics_file = dir + "obs_test_metrics.json";
    options.trace_file = dir + "obs_test_trace.json";
    const scenario::ScenarioOutcome outcome = scenario::run_scenario(spec, options);

    // Obs on never changes the result digest, and the merged obs counters
    // are themselves thread-count invariant.
    EXPECT_EQ(outcome.stats_digest, untraced.stats_digest) << threads << " threads";
    ASSERT_FALSE(outcome.obs_text.empty());
    if (baseline.empty()) baseline = outcome.obs_text;
    EXPECT_EQ(outcome.obs_text, baseline) << threads << " threads";

    // Both artifacts parse with the repo's own JSON reader.
    const util::JsonValue metrics = util::parse_json(outcome.metrics_json);
    EXPECT_EQ(metrics.at("schema").as_string(), "wlgen-metrics-v1");
    EXPECT_EQ(metrics.at("groups").as_array().size(), 1u);
    const util::JsonValue trace = util::parse_json(outcome.trace_json);
    EXPECT_GT(trace.at("traceEvents").as_array().size(), 0u);
  }
}

TEST(ScenarioObs, SpecKeysParseAndValidate) {
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_text(R"(
[scenario]
name = keys
mode = sharded

[workload]
users = 2
sessions = 2

[model]
name = nfs

[obs]
metrics = out/metrics.json
trace = out/trace.json
trace_events = 1024
progress = true
)");
  EXPECT_EQ(spec.obs_metrics, "out/metrics.json");
  EXPECT_EQ(spec.obs_trace, "out/trace.json");
  EXPECT_EQ(spec.obs_trace_events, 1024u);
  EXPECT_TRUE(spec.obs_progress);

  EXPECT_THROW(scenario::ScenarioSpec::parse_text(R"(
[scenario]
name = bad
[workload]
users = 1
[model]
name = nfs
[obs]
trace_events = 0
)"),
               std::invalid_argument);
}

// --- progress reporter ------------------------------------------------------

TEST(Progress, AdvanceAndStopAreSafe) {
  ProgressReporter::Options options;
  options.label = "obs-test";
  options.unit = "units";
  options.total_units = 4;
  options.interval_ms = 5;
  ProgressReporter progress(options);
  for (int i = 0; i < 4; ++i) progress.advance(1, 100, 50.0);
  progress.note_sim_time(123.0);
  progress.stop();
  progress.stop();  // idempotent
}

}  // namespace
}  // namespace wlgen::obs
