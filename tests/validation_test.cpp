// Tests for multi-client NFS topology and the statistical validation module.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "core/validation.h"
#include "dist/basic.h"
#include "fsmodel/nfs_model.h"

namespace wlgen::core {
namespace {

UsageLog generate_log(std::size_t users, std::size_t sessions, std::size_t clients = 1,
                      fsmodel::NfsModel** model_out = nullptr,
                      sim::Simulation* simulation = nullptr,
                      std::uint64_t fsc_seed = 1991) {
  static std::unique_ptr<sim::Simulation> owned_sim;
  static std::unique_ptr<fsmodel::NfsModel> owned_model;
  sim::Simulation* sim_ptr = simulation;
  if (sim_ptr == nullptr) {
    owned_sim = std::make_unique<sim::Simulation>();
    sim_ptr = owned_sim.get();
  }
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsParams params;
  params.num_clients = clients;
  owned_model = std::make_unique<fsmodel::NfsModel>(*sim_ptr, params);
  if (model_out != nullptr) *model_out = owned_model.get();
  FscConfig fsc_config;
  fsc_config.num_users = users;
  // A 64-file pool realises per-pool accesses/byte anywhere in ~[2.0, 2.35]
  // depending on the FSC seed (the bias is a property of the drawn file
  // sizes, not of the session count); 256 files converges the measurement
  // so the statistical checks test the generator, not one pool draw.
  fsc_config.files_per_user = 256;
  fsc_config.seed = fsc_seed;
  FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
  const CreatedFileSystem manifest = fsc.create();
  UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.client_machines = clients;
  UserSimulator usim(*sim_ptr, fsys, *owned_model, manifest, default_population(), config);
  usim.run();
  return usim.log();
}

TEST(MultiClient, RejectsZeroClients) {
  sim::Simulation simulation;
  fsmodel::NfsParams params;
  params.num_clients = 0;
  EXPECT_THROW(fsmodel::NfsModel(simulation, params), std::invalid_argument);
}

TEST(MultiClient, OpsRouteToOwningClient) {
  sim::Simulation simulation;
  fsmodel::NfsParams params;
  params.num_clients = 3;
  fsmodel::NfsModel nfs(simulation, params);
  ASSERT_EQ(nfs.num_clients(), 3u);

  fsmodel::FsOp op;
  op.type = fsmodel::FsOpType::read;
  op.file_id = 1;
  op.size = 1024;
  op.client = 2;
  sim::execute_chain(simulation, nfs.plan(op), [](double) {});
  simulation.run();
  EXPECT_EQ(nfs.client_cache(2).misses(), 1u);
  EXPECT_EQ(nfs.client_cache(0).misses() + nfs.client_cache(0).hits(), 0u);
  EXPECT_EQ(nfs.client_cache(1).misses() + nfs.client_cache(1).hits(), 0u);
}

TEST(MultiClient, CachesArePrivatePerClient) {
  sim::Simulation simulation;
  fsmodel::NfsParams params;
  params.num_clients = 2;
  fsmodel::NfsModel nfs(simulation, params);

  const auto read_on = [&](std::uint32_t client) {
    fsmodel::FsOp op;
    op.type = fsmodel::FsOpType::read;
    op.file_id = 7;
    op.size = 512;
    op.client = client;
    double elapsed = -1.0;
    sim::execute_chain(simulation, nfs.plan(op), [&](double t) { elapsed = t; });
    simulation.run();
    return elapsed;
  };
  const double cold0 = read_on(0);
  const double warm0 = read_on(0);
  // Client 1 misses its own cache but hits the server cache (warm server).
  const double cross1 = read_on(1);
  EXPECT_LT(warm0, cold0 / 10.0);
  EXPECT_GT(cross1, warm0 * 2.0);   // had to cross the network
  EXPECT_LT(cross1, cold0);         // but the server cache spared the disk
}

TEST(MultiClient, UnlinkInvalidatesAllClients) {
  sim::Simulation simulation;
  fsmodel::NfsParams params;
  params.num_clients = 2;
  fsmodel::NfsModel nfs(simulation, params);
  for (std::uint32_t c = 0; c < 2; ++c) {
    fsmodel::FsOp open;
    open.type = fsmodel::FsOpType::open;
    open.file_id = 9;
    open.client = c;
    sim::execute_chain(simulation, nfs.plan(open), [](double) {});
    simulation.run();
  }
  EXPECT_TRUE(nfs.client_attr_cache(0).contains(9));
  EXPECT_TRUE(nfs.client_attr_cache(1).contains(9));
  fsmodel::FsOp unlink;
  unlink.type = fsmodel::FsOpType::unlink;
  unlink.file_id = 9;
  unlink.client = 0;
  sim::execute_chain(simulation, nfs.plan(unlink), [](double) {});
  simulation.run();
  EXPECT_FALSE(nfs.client_attr_cache(0).contains(9));
  EXPECT_FALSE(nfs.client_attr_cache(1).contains(9));
}

TEST(MultiClient, SpreadingUsersRelievesTheClientCpu) {
  // 4 zero-think users on 1 workstation vs on 4 workstations: the shared
  // server disk dominates either way (so end-to-end response barely moves —
  // bench/ablation_topology quantifies that), but the per-client CPU load
  // must drop roughly 4x, and response must not get *worse*.
  struct Point {
    double response_per_byte;
    double client0_cpu_util;
  };
  const auto run_topology = [](std::size_t clients) {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    fsmodel::NfsParams params;
    params.num_clients = clients;
    fsmodel::NfsModel nfs(simulation, params);
    FscConfig fsc_config;
    fsc_config.num_users = 4;
    FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
    const CreatedFileSystem manifest = fsc.create();
    UsimConfig config;
    config.num_users = 4;
    config.sessions_per_user = 8;
    config.client_machines = clients;
    Population population;
    population.groups.push_back({extremely_heavy_user(), 1.0});
    population.validate_and_normalize();
    UserSimulator usim(simulation, fsys, nfs, manifest, population, config);
    usim.run();
    return Point{UsageAnalyzer(usim.log()).response_per_byte_us(),
                 nfs.client_cpu(0).utilization()};
  };
  const Point shared = run_topology(1);
  const Point spread = run_topology(4);
  EXPECT_LT(spread.client0_cpu_util, shared.client0_cpu_util * 0.5);
  EXPECT_LE(spread.response_per_byte, shared.response_per_byte * 1.05);
}

TEST(Validation, GeneratedWorkloadPassesItsOwnSpec) {
  const UsageLog log = generate_log(1, 120);
  const ValidationReport report = validate_log(log, heavy_user());
  EXPECT_FALSE(report.checks.empty());
  for (const auto& check : report.checks) {
    EXPECT_TRUE(check.passed) << check.measure << ": expected " << check.expected_mean
                              << " measured " << check.measured_mean << " (rel err "
                              << check.relative_error * 100.0 << "%, KS p " << check.ks_p_value
                              << ")";
  }
  EXPECT_TRUE(report.all_passed());
  EXPECT_NE(report.render().find("pass"), std::string::npos);
}

TEST(Validation, AccessesPerByteConvergesAcrossAnFscSeedSweepAt256Files) {
  // The 256-file claim in generate_log made explicit: the pool-size choice
  // must converge the accesses/byte measurement (and the read-size KS) for
  // *any* FSC seed, not just the default pool draw — a 64-file pool puts
  // accesses/byte anywhere in ~[2.0, 2.35] depending on the drawn sizes.
  // Touch probabilities are deliberately excluded: they stay pool-coupled
  // at any size (usim skips zero-size pool files, so a "touch" session can
  // log no ops in a small category such as NOTES).
  for (const std::uint64_t fsc_seed : {1991ull, 7ull, 23ull}) {
    const UsageLog log = generate_log(1, 120, 1, nullptr, nullptr, fsc_seed);
    const ValidationReport report = validate_log(log, heavy_user());
    for (const auto& check : report.checks) {
      const bool converged_measure =
          check.measure.find("accesses/byte") != std::string::npos ||
          check.measure.find("request size") != std::string::npos;
      if (!converged_measure) continue;
      EXPECT_TRUE(check.passed)
          << "FSC seed " << fsc_seed << ": " << check.measure << " expected "
          << check.expected_mean << " measured " << check.measured_mean << " (rel err "
          << check.relative_error * 100.0 << "%)";
    }
  }
}

TEST(Validation, DetectsWrongAccessSizeSpec) {
  const UsageLog log = generate_log(1, 40);
  UserType wrong = heavy_user();
  wrong.access_size_bytes = make_dist<dist::ExponentialDistribution>(4096.0);  // not what ran
  const ValidationReport report = validate_log(log, wrong);
  bool access_failed = false;
  for (const auto& check : report.checks) {
    if (check.measure == "read request size (B)") access_failed = !check.passed;
  }
  EXPECT_TRUE(access_failed);
  EXPECT_FALSE(report.all_passed());
}

TEST(Validation, DetectsWrongTouchProbability) {
  const UsageLog log = generate_log(1, 60);
  UserType wrong = heavy_user();
  for (auto& profile : wrong.usage) {
    if (profile.category.label() == "REG/NOTES/RDONLY") profile.prob_accessing_category = 0.05;
  }
  const ValidationReport report = validate_log(log, wrong);
  bool touch_failed = false;
  for (const auto& check : report.checks) {
    if (check.measure == "REG/NOTES/RDONLY touch prob") touch_failed = !check.passed;
  }
  EXPECT_TRUE(touch_failed);
}

TEST(Validation, EmptyLogProducesNoSpuriousPasses) {
  UsageLog empty;
  const ValidationReport report = validate_log(empty, heavy_user());
  // Touch probabilities are checked (all measured 0) and must fail.
  EXPECT_FALSE(report.all_passed());
}

}  // namespace
}  // namespace wlgen::core
