// Unit tests for src/exp: experiment registry, expectation-check verdicts,
// ExperimentResult JSON round-trip, artifact writing (directory creation +
// slugified names), and determinism of a real registered experiment.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "exp/artifacts.h"
#include "exp/expectation.h"
#include "exp/harness.h"
#include "exp/registry.h"
#include "exp/result.h"
#include "experiments.h"
#include "util/json.h"
#include "util/strings.h"

namespace wlgen::exp {
namespace {

Experiment tiny_experiment(const std::string& id, double final_value) {
  Experiment e;
  e.id = id;
  e.title = "tiny";
  e.run = [final_value](const RunContext&) {
    ExperimentResult r;
    r.add_series("curve", {1.0, 2.0, 3.0}, {1.0, 2.0, final_value});
    r.set_scalar("final", final_value);
    return r;
  };
  return e;
}

TEST(Registry, LookupFindsRegisteredExperimentsAndRejectsDuplicates) {
  Registry registry;
  registry.add(tiny_experiment("a", 3.0));
  registry.add(tiny_experiment("b", 4.0));
  ASSERT_NE(registry.find("a"), nullptr);
  EXPECT_EQ(registry.find("a")->id, "a");
  EXPECT_EQ(registry.find("missing"), nullptr);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_THROW(registry.add(tiny_experiment("a", 5.0)), std::invalid_argument);
  Experiment no_run;
  no_run.id = "no_run";
  EXPECT_THROW(registry.add(std::move(no_run)), std::invalid_argument);
}

TEST(Registry, AllTwentyFivePaperExperimentsRegister) {
  Registry registry;
  bench::register_all_experiments(registry);
  // 23 paper artefacts + the 2 open-system traffic checks (bench/experiments.h).
  EXPECT_EQ(registry.size(), 25u);
  for (const char* id : {"fig5_1", "fig5_6", "fig5_12", "table5_1", "table5_4",
                         "ablation_cache", "baseline_bench", "compare_fs",
                         "offered_load", "slowdown_recovery"}) {
    EXPECT_NE(registry.find(id), nullptr) << id;
  }
  EXPECT_EQ(registry.find("fig5_6")->artifact_slug(), "figure_5_6");
  EXPECT_EQ(registry.find("ablation_cache")->artifact_slug(), "ablation_cache");
}

TEST(Expectation, MonotonicUpPassesOnRisingSeriesAndFailsOnFallingOne) {
  ExperimentResult rising;
  rising.add_series("curve", {1, 2, 3, 4}, {1.0, 2.0, 3.0, 4.0});
  const CheckOutcome good = check_expectation(
      expect_monotonic_up("curve", 0.0, Verdict::fail, "rises"), rising, 1.0);
  EXPECT_EQ(good.verdict, Verdict::pass);

  ExperimentResult falling;
  falling.add_series("curve", {1, 2, 3, 4}, {4.0, 3.0, 5.0, 1.0});
  const CheckOutcome bad = check_expectation(
      expect_monotonic_up("curve", 0.0, Verdict::fail, "rises"), falling, 1.0);
  EXPECT_EQ(bad.verdict, Verdict::fail);
}

TEST(Expectation, MonotonicToleranceForgivesSmallCounterSteps) {
  ExperimentResult noisy;
  // One 0.1 dip against a range of 3.0: within a 0.05 (= 0.15) slack.
  noisy.add_series("curve", {1, 2, 3, 4}, {1.0, 2.0, 1.9, 4.0});
  EXPECT_EQ(check_expectation(expect_monotonic_up("curve", 0.05, Verdict::fail, ""), noisy,
                              1.0)
                .verdict,
            Verdict::pass);
  EXPECT_EQ(check_expectation(expect_monotonic_up("curve", 0.0, Verdict::fail, ""), noisy,
                              1.0)
                .verdict,
            Verdict::fail);
}

TEST(Expectation, RangeChecksGradeScalarsAndFinalValues) {
  ExperimentResult r;
  r.add_series("curve", {1, 2, 3}, {1.0, 2.0, 12.0});
  r.set_scalar("growth", 12.0);
  EXPECT_EQ(check_expectation(expect_final_in_range("curve", 10, 15, Verdict::warn, ""), r,
                              1.0)
                .verdict,
            Verdict::pass);
  EXPECT_EQ(check_expectation(expect_final_in_range("curve", 13, 15, Verdict::warn, ""), r,
                              1.0)
                .verdict,
            Verdict::warn);
  EXPECT_EQ(check_expectation(expect_scalar_in_range("growth", 0, 5, Verdict::fail, ""), r,
                              1.0)
                .verdict,
            Verdict::fail);
  // A missing target is always a hard fail, even for warn-severity checks.
  EXPECT_EQ(check_expectation(expect_scalar_in_range("absent", 0, 5, Verdict::warn, ""), r,
                              1.0)
                .verdict,
            Verdict::fail);
}

TEST(Expectation, ReducedProfileDemotesRangeFailuresButNotShapeFailures) {
  ExperimentResult r;
  r.add_series("curve", {1, 2, 3}, {3.0, 2.0, 1.0});
  r.set_scalar("level", 100.0);
  // Absolute level out of band: fail at paper scale, warn at reduced scale.
  const Expectation range = expect_scalar_in_range("level", 0, 10, Verdict::fail, "");
  EXPECT_EQ(check_expectation(range, r, 1.0).verdict, Verdict::fail);
  EXPECT_EQ(check_expectation(range, r, 0.25).verdict, Verdict::warn);
  // Shape invariants stay hard regardless of profile.
  const Expectation shape = expect_monotonic_up("curve", 0.0, Verdict::fail, "");
  EXPECT_EQ(check_expectation(shape, r, 0.25).verdict, Verdict::fail);
}

TEST(Expectation, GradeReturnsWorstVerdict) {
  ExperimentResult r;
  r.add_series("curve", {1, 2, 3}, {1.0, 2.0, 3.0});
  r.set_scalar("level", 2.0);
  std::vector<CheckOutcome> outcomes;
  const Verdict verdict = grade(
      {
          expect_monotonic_up("curve", 0.0, Verdict::fail, ""),
          expect_scalar_in_range("level", 5, 6, Verdict::warn, ""),
      },
      r, 1.0, &outcomes);
  EXPECT_EQ(verdict, Verdict::warn);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].verdict, Verdict::pass);
  EXPECT_EQ(outcomes[1].verdict, Verdict::warn);
}

TEST(ExperimentResultJson, RoundTripPreservesSeriesScalarsAndNotes) {
  ExperimentResult r;
  auto& s = r.add_series("response", {1.0, 2.0, 3.0}, {1.5, 2.25, 6.875});
  s.color = "#d62728";
  r.add_series("empty", {}, {});
  r.set_scalar("growth_ratio", 3.51);
  r.set_scalar("final", 6.875);
  r.x_label = "users";
  r.y_label = "us per \"byte\"";  // exercises string escaping
  r.notes.push_back("line one\nline two");

  const std::string text = r.to_json().dump();
  const ExperimentResult back = ExperimentResult::from_json(util::parse_json(text));
  ASSERT_EQ(back.series.size(), 2u);
  EXPECT_EQ(back.series[0].name, "response");
  EXPECT_EQ(back.series[0].color, "#d62728");
  EXPECT_EQ(back.series[0].xs, r.series[0].xs);
  EXPECT_EQ(back.series[0].ys, r.series[0].ys);
  EXPECT_EQ(back.scalars, r.scalars);
  EXPECT_EQ(back.x_label, "users");
  EXPECT_EQ(back.y_label, r.y_label);
  EXPECT_EQ(back.notes, r.notes);
  // Serialization is canonical: a second trip emits identical bytes.
  EXPECT_EQ(back.to_json().dump(), text);
}

TEST(ExperimentResultJson, NonFiniteValuesRoundTripAsNull) {
  ExperimentResult r;
  r.add_series("curve", {1.0, 2.0}, {std::numeric_limits<double>::quiet_NaN(), 5.0});
  r.set_scalar("ratio", std::numeric_limits<double>::infinity());
  const std::string text = r.to_json().dump();
  EXPECT_NE(text.find("null"), std::string::npos);
  const ExperimentResult back = ExperimentResult::from_json(util::parse_json(text));
  EXPECT_TRUE(std::isnan(back.series[0].ys[0]));
  EXPECT_EQ(back.series[0].ys[1], 5.0);
  ASSERT_EQ(back.scalars.size(), 1u);
  EXPECT_TRUE(std::isnan(back.scalars[0].second));  // Inf clips to null -> NaN
  EXPECT_EQ(back.to_json().dump(), text);
}

TEST(Artifacts, WriteCreatesMissingDirectoryAndSlugifiesNames) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "wlgen_exp_test_artifacts";
  std::filesystem::remove_all(base);
  const std::string dir = (base / "nested" / "out").string();
  // The old bench/common helper silently returned "" here because the
  // directory did not exist; the exp:: writer must create it.
  const std::string path = write_artifact(dir, "Figure 5.6.svg", "<svg/>");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(std::filesystem::path(path).filename().string(), "figure_5_6.svg");
  EXPECT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "<svg/>");
  std::filesystem::remove_all(base);
}

TEST(Harness, RunsSelectedExperimentsAndCountsVerdicts) {
  Registry registry;
  Experiment good = tiny_experiment("good", 3.0);
  good.expectations = {expect_monotonic_up("curve", 0.0, Verdict::fail, "")};
  Experiment bad = tiny_experiment("bad", 0.5);
  bad.expectations = {expect_monotonic_up("curve", 0.0, Verdict::fail, "")};
  Experiment throws = tiny_experiment("throws", 1.0);
  throws.run = [](const RunContext&) -> ExperimentResult {
    throw std::runtime_error("boom");
  };
  registry.add(std::move(good));
  registry.add(std::move(bad));
  registry.add(std::move(throws));

  HarnessOptions options;
  options.write_artifacts = false;
  const HarnessSummary summary = run_experiments(registry, options);
  ASSERT_EQ(summary.reports.size(), 3u);
  EXPECT_EQ(summary.passed, 1u);
  EXPECT_EQ(summary.failed, 2u);
  EXPECT_EQ(summary.reports[2].error, "boom");
  EXPECT_TRUE(summary.any_fail());

  HarnessOptions only;
  only.write_artifacts = false;
  only.only = {"good"};
  EXPECT_EQ(run_experiments(registry, only).reports.size(), 1u);
  only.only = {"nonexistent"};
  EXPECT_THROW(run_experiments(registry, only), std::invalid_argument);
}

TEST(Harness, ExperimentsMdListsEveryReport) {
  Registry registry;
  registry.add(tiny_experiment("alpha", 3.0));
  HarnessOptions options;
  options.write_artifacts = false;
  const HarnessSummary summary = run_experiments(registry, options);
  const std::string md = render_experiments_md(summary, options);
  EXPECT_NE(md.find("| alpha |"), std::string::npos);
  EXPECT_NE(md.find("## alpha"), std::string::npos);
  EXPECT_NE(md.find("1 pass"), std::string::npos);
}

TEST(Determinism, RegisteredExperimentProducesIdenticalJsonAcrossRuns) {
  // table5_4 runs three real FSC+USIM workloads; at a reduced profile it is
  // fast and must be a pure function of (seed, scale).
  const Experiment experiment = bench::make_table5_4();
  RunContext ctx;
  ctx.seed = 1991;
  ctx.scale = 0.1;
  const std::string first = experiment.run(ctx).to_json().dump();
  const std::string second = experiment.run(ctx).to_json().dump();
  EXPECT_EQ(first, second);
}

TEST(Harness, ReplicationsAndContendedThreadsReachTheRunContext) {
  Registry registry;
  Experiment probe = tiny_experiment("probe", 3.0);
  probe.run = [](const RunContext& ctx) {
    ExperimentResult result;
    result.set_scalar("replications", static_cast<double>(ctx.replications));
    result.set_scalar("contended_threads", static_cast<double>(ctx.contended_threads));
    return result;
  };
  registry.add(std::move(probe));

  HarnessOptions options;
  options.write_artifacts = false;
  options.replications = 5;
  options.threads = 2;
  const HarnessSummary summary = run_experiments(registry, options);
  ASSERT_EQ(summary.reports.size(), 1u);
  EXPECT_DOUBLE_EQ(*summary.reports[0].result.find_scalar("replications"), 5.0);
  EXPECT_DOUBLE_EQ(*summary.reports[0].result.find_scalar("contended_threads"), 2.0);

  options.replications = 0;
  EXPECT_THROW(run_experiments(registry, options), std::invalid_argument);
}

TEST(Determinism, ContendedResponseExperimentIsThreadInvariant) {
  // A Figures 5.6-5.11 registration at a tiny profile: the contended sweep
  // underneath must make the emitted JSON independent of its worker-thread
  // count (the ContendedRunner merge contract, observed end to end).
  const Experiment experiment = bench::make_fig5_7();
  RunContext serial;
  serial.scale = 0.05;
  serial.replications = 2;
  serial.contended_threads = 1;
  RunContext parallel = serial;
  parallel.contended_threads = 8;
  EXPECT_EQ(experiment.run(serial).to_json().dump(),
            experiment.run(parallel).to_json().dump());
}

}  // namespace
}  // namespace wlgen::exp
