// Unit tests for src/fs: POSIX-flavoured semantics of the simulated file
// system — path resolution, descriptor lifecycle, EOF truncation,
// unlink-while-open, directory behaviour, capacity accounting.

#include <gtest/gtest.h>

#include "fs/filesystem.h"
#include "fs/path.h"

namespace wlgen::fs {
namespace {

TEST(Path, SplitNormalizes) {
  std::vector<std::string> parts;
  ASSERT_TRUE(split_path("/a/./b/../c//d/", parts));
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "c", "d"}));
  ASSERT_TRUE(split_path("/", parts));
  EXPECT_TRUE(parts.empty());
  EXPECT_FALSE(split_path("relative/path", parts));
  EXPECT_FALSE(split_path("", parts));
}

TEST(Path, DotDotClampsAtRoot) {
  std::vector<std::string> parts;
  ASSERT_TRUE(split_path("/../../a", parts));
  EXPECT_EQ(parts, (std::vector<std::string>{"a"}));
}

TEST(Path, JoinParentBase) {
  EXPECT_EQ(join_path({}), "/");
  EXPECT_EQ(join_path({"a", "b"}), "/a/b");
  EXPECT_EQ(parent_path("/a/b"), "/a");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(base_name("/a/b"), "b");
  EXPECT_EQ(base_name("/"), "");
}

TEST(FileSystem, CreateWriteReadRoundTrip) {
  SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/hello");
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fsys.write(fd.value(), 100).value(), 100u);
  EXPECT_EQ(fsys.close(fd.value()), FsStatus::ok);

  const auto rd = fsys.open("/hello", kRead);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(fsys.read(rd.value(), 60).value(), 60u);
  EXPECT_EQ(fsys.read(rd.value(), 60).value(), 40u);  // EOF truncation
  EXPECT_EQ(fsys.read(rd.value(), 60).value(), 0u);   // at EOF
  EXPECT_EQ(fsys.close(rd.value()), FsStatus::ok);
}

TEST(FileSystem, EofTruncationIsTheTable53Mechanism) {
  // A 1000-byte file read in 1024-byte requests moves only 1000 bytes —
  // the reason the paper's measured mean access size (946.71) is below the
  // 1024-byte input mean.
  SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/f");
  fsys.write(fd.value(), 1000);
  fsys.lseek(fd.value(), 0, Seek::set);
  fsys.close(fd.value());
  const auto rd = fsys.open("/f", kRead);
  EXPECT_EQ(fsys.read(rd.value(), 1024).value(), 1000u);
}

TEST(FileSystem, OpenFlagsEnforced) {
  SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/f");
  fsys.write(fd.value(), 10);
  fsys.close(fd.value());

  const auto rd = fsys.open("/f", kRead);
  EXPECT_EQ(fsys.write(rd.value(), 5).status(), FsStatus::not_permitted);
  fsys.close(rd.value());

  const auto wr = fsys.open("/f", kWrite);
  EXPECT_EQ(fsys.read(wr.value(), 5).status(), FsStatus::not_permitted);
  fsys.close(wr.value());

  EXPECT_EQ(fsys.open("/f", 0).status(), FsStatus::invalid_argument);
}

TEST(FileSystem, CreatTruncatesExisting) {
  SimulatedFileSystem fsys;
  auto fd = fsys.creat("/f");
  fsys.write(fd.value(), 500);
  fsys.close(fd.value());
  fd = fsys.creat("/f");
  fsys.close(fd.value());
  EXPECT_EQ(fsys.stat("/f").value().size, 0u);
}

TEST(FileSystem, OpenMissingWithoutCreateFails) {
  SimulatedFileSystem fsys;
  EXPECT_EQ(fsys.open("/nope", kRead).status(), FsStatus::not_found);
  EXPECT_EQ(fsys.open("/no/dir/file", kRead | kCreate | kWrite).status(), FsStatus::not_found);
}

TEST(FileSystem, AppendModePositionsAtEof) {
  SimulatedFileSystem fsys;
  auto fd = fsys.creat("/log");
  fsys.write(fd.value(), 10);
  fsys.close(fd.value());
  fd = fsys.open("/log", kWrite | kAppend);
  fsys.write(fd.value(), 5);
  fsys.close(fd.value());
  EXPECT_EQ(fsys.stat("/log").value().size, 15u);
}

TEST(FileSystem, LseekWhenceVariants) {
  SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/f");
  fsys.write(fd.value(), 100);
  EXPECT_EQ(fsys.lseek(fd.value(), 10, Seek::set).value(), 10u);
  EXPECT_EQ(fsys.lseek(fd.value(), 5, Seek::cur).value(), 15u);
  EXPECT_EQ(fsys.lseek(fd.value(), -10, Seek::end).value(), 90u);
  EXPECT_EQ(fsys.lseek(fd.value(), -200, Seek::cur).status(), FsStatus::invalid_argument);
  // Seeking past EOF is legal; the read then returns 0.
  EXPECT_EQ(fsys.lseek(fd.value(), 500, Seek::set).value(), 500u);
  fsys.close(fd.value());
}

TEST(FileSystem, BadDescriptorsRejected) {
  SimulatedFileSystem fsys;
  EXPECT_EQ(fsys.read(99, 1).status(), FsStatus::bad_descriptor);
  EXPECT_EQ(fsys.write(99, 1).status(), FsStatus::bad_descriptor);
  EXPECT_EQ(fsys.close(99), FsStatus::bad_descriptor);
  EXPECT_EQ(fsys.lseek(99, 0, Seek::set).status(), FsStatus::bad_descriptor);
  EXPECT_EQ(fsys.fstat(99).status(), FsStatus::bad_descriptor);
}

TEST(FileSystem, UnlinkWhileOpenKeepsInodeAlive) {
  SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/victim");
  fsys.write(fd.value(), 42);
  EXPECT_EQ(fsys.unlink("/victim"), FsStatus::ok);
  EXPECT_FALSE(fsys.exists("/victim"));
  // The descriptor still works (classic UNIX tmp-file idiom).
  fsys.lseek(fd.value(), 0, Seek::set);
  EXPECT_EQ(fsys.read(fd.value(), 100).status(), FsStatus::not_permitted);  // write-only fd
  EXPECT_EQ(fsys.fstat(fd.value()).value().size, 42u);
  const std::size_t inodes_before = fsys.inode_count();
  fsys.close(fd.value());
  EXPECT_EQ(fsys.inode_count(), inodes_before - 1);  // collected on close
}

TEST(FileSystem, HardLinksShareTheInode) {
  SimulatedFileSystem fsys;
  auto fd = fsys.creat("/a");
  fsys.write(fd.value(), 50);
  fsys.close(fd.value());
  ASSERT_EQ(fsys.link("/a", "/b"), FsStatus::ok);
  EXPECT_EQ(fsys.stat("/b").value().inode, fsys.stat("/a").value().inode);
  EXPECT_EQ(fsys.stat("/a").value().link_count, 2u);
  // Writing through one name is visible through the other.
  fd = fsys.open("/b", kWrite | kAppend);
  fsys.write(fd.value(), 10);
  fsys.close(fd.value());
  EXPECT_EQ(fsys.stat("/a").value().size, 60u);
  // Unlinking one name keeps the file alive under the other.
  EXPECT_EQ(fsys.unlink("/a"), FsStatus::ok);
  EXPECT_TRUE(fsys.exists("/b"));
  EXPECT_EQ(fsys.stat("/b").value().link_count, 1u);
  const std::uint64_t used = fsys.bytes_in_use();
  EXPECT_EQ(fsys.unlink("/b"), FsStatus::ok);
  EXPECT_EQ(fsys.bytes_in_use(), used - 60);
}

TEST(FileSystem, LinkErrors) {
  SimulatedFileSystem fsys;
  fsys.mkdir("/d");
  fsys.close(fsys.creat("/f").value());
  EXPECT_EQ(fsys.link("/missing", "/x"), FsStatus::not_found);
  EXPECT_EQ(fsys.link("/d", "/x"), FsStatus::is_a_directory);
  EXPECT_EQ(fsys.link("/f", "/f"), FsStatus::already_exists);
  EXPECT_EQ(fsys.link("/f", "/no/dir/x"), FsStatus::not_found);
}

TEST(FileSystem, UnlinkErrors) {
  SimulatedFileSystem fsys;
  EXPECT_EQ(fsys.unlink("/missing"), FsStatus::not_found);
  fsys.mkdir("/dir");
  EXPECT_EQ(fsys.unlink("/dir"), FsStatus::is_a_directory);
}

TEST(FileSystem, MkdirRmdirSemantics) {
  SimulatedFileSystem fsys;
  EXPECT_EQ(fsys.mkdir("/a"), FsStatus::ok);
  EXPECT_EQ(fsys.mkdir("/a"), FsStatus::already_exists);
  EXPECT_EQ(fsys.mkdir("/x/y"), FsStatus::not_found);  // parent missing
  EXPECT_EQ(fsys.mkdir_recursive("/x/y/z"), FsStatus::ok);
  EXPECT_TRUE(fsys.exists("/x/y/z"));
  EXPECT_EQ(fsys.rmdir("/x/y"), FsStatus::directory_not_empty);
  EXPECT_EQ(fsys.rmdir("/x/y/z"), FsStatus::ok);
  EXPECT_EQ(fsys.rmdir("/x/y"), FsStatus::ok);
}

TEST(FileSystem, DirectoryHasEntrySizeAndIsReadable) {
  SimulatedFileSystem fsys;
  fsys.mkdir("/d");
  EXPECT_EQ(fsys.stat("/d").value().size, 0u);
  fsys.close(fsys.creat("/d/file_one").value());
  fsys.close(fsys.creat("/d/f2").value());
  // 16 + strlen per UFS-style entry.
  EXPECT_EQ(fsys.stat("/d").value().size, (16 + 8) + (16 + 2));
  // read(2) on the directory works (4.xBSD semantics).
  const auto fd = fsys.open("/d", kRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fsys.read(fd.value(), 1000).value(), fsys.stat("/d").value().size);
  fsys.close(fd.value());
  // ...but writing it does not.
  EXPECT_EQ(fsys.open("/d", kWrite).status(), FsStatus::is_a_directory);
  fsys.unlink("/d/f2");
  EXPECT_EQ(fsys.stat("/d").value().size, 16u + 8u);
}

TEST(FileSystem, ReaddirSorted) {
  SimulatedFileSystem fsys;
  fsys.mkdir("/d");
  fsys.close(fsys.creat("/d/b").value());
  fsys.close(fsys.creat("/d/a").value());
  const auto names = fsys.readdir("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(fsys.readdir("/d/a").status(), FsStatus::not_a_directory);
  EXPECT_EQ(fsys.readdir("/missing").status(), FsStatus::not_found);
}

TEST(FileSystem, RenameMovesAndReplaces) {
  SimulatedFileSystem fsys;
  fsys.mkdir("/a");
  fsys.mkdir("/b");
  auto fd = fsys.creat("/a/f");
  fsys.write(fd.value(), 7);
  fsys.close(fd.value());
  EXPECT_EQ(fsys.rename("/a/f", "/b/g"), FsStatus::ok);
  EXPECT_FALSE(fsys.exists("/a/f"));
  EXPECT_EQ(fsys.stat("/b/g").value().size, 7u);

  fd = fsys.creat("/b/h");
  fsys.write(fd.value(), 3);
  fsys.close(fd.value());
  EXPECT_EQ(fsys.rename("/b/h", "/b/g"), FsStatus::ok);  // replaces g
  EXPECT_EQ(fsys.stat("/b/g").value().size, 3u);
}

TEST(FileSystem, RenameDirectoryIntoItselfRejected) {
  SimulatedFileSystem fsys;
  fsys.mkdir_recursive("/a/b");
  EXPECT_EQ(fsys.rename("/a", "/a/b/c"), FsStatus::invalid_argument);
}

TEST(FileSystem, CapacityEnforced) {
  SimulatedFileSystem::Options options;
  options.capacity_bytes = 100;
  SimulatedFileSystem fsys(options);
  const auto fd = fsys.creat("/f");
  EXPECT_EQ(fsys.write(fd.value(), 80).value(), 80u);
  EXPECT_EQ(fsys.write(fd.value(), 80).status(), FsStatus::no_space);
  EXPECT_EQ(fsys.bytes_in_use(), 80u);
  // Truncation frees space.
  fsys.close(fd.value());
  EXPECT_EQ(fsys.truncate("/f", 10), FsStatus::ok);
  EXPECT_EQ(fsys.bytes_in_use(), 10u);
}

TEST(FileSystem, MaxOpenFilesEnforced) {
  SimulatedFileSystem::Options options;
  options.max_open_files = 2;
  SimulatedFileSystem fsys(options);
  const auto a = fsys.creat("/a");
  const auto b = fsys.creat("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(fsys.creat("/c").status(), FsStatus::too_many_open_files);
  fsys.close(a.value());
  EXPECT_TRUE(fsys.creat("/c").ok());
}

TEST(FileSystem, NameLengthEnforced) {
  SimulatedFileSystem::Options options;
  options.max_name_length = 5;
  SimulatedFileSystem fsys(options);
  EXPECT_EQ(fsys.creat("/toolongname").status(), FsStatus::name_too_long);
  EXPECT_TRUE(fsys.creat("/ok").ok());
}

TEST(FileSystem, StoreDataRoundTripsBytes) {
  SimulatedFileSystem::Options options;
  options.store_data = true;
  SimulatedFileSystem fsys(options);
  const auto fd = fsys.creat("/data");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(fsys.write_bytes(fd.value(), payload).value(), 5u);
  fsys.close(fd.value());

  const auto rd = fsys.open("/data", kRead);
  const auto got = fsys.read_bytes(rd.value(), 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), payload);
  fsys.close(rd.value());
}

TEST(FileSystem, ReadBytesRequiresStoreData) {
  SimulatedFileSystem fsys;  // store_data off
  const auto fd = fsys.creat("/f");
  EXPECT_EQ(fsys.read_bytes(fd.value(), 1).status(), FsStatus::invalid_argument);
  fsys.close(fd.value());
}

TEST(FileSystem, SyntheticWritePatternIsDeterministic) {
  SimulatedFileSystem::Options options;
  options.store_data = true;
  SimulatedFileSystem fsys(options);
  const auto fd = fsys.creat("/f");
  fsys.write(fd.value(), 300);  // synthetic pattern: byte i = i & 0xff
  fsys.lseek(fd.value(), 0, Seek::set);
  fsys.close(fd.value());
  const auto rd = fsys.open("/f", kRead);
  const auto got = fsys.read_bytes(rd.value(), 300);
  ASSERT_TRUE(got.ok());
  for (std::size_t i = 0; i < got.value().size(); ++i) {
    EXPECT_EQ(got.value()[i], static_cast<std::uint8_t>(i & 0xff));
  }
  fsys.close(rd.value());
}

TEST(FileSystem, StatCountsAccesses) {
  SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/f");
  fsys.write(fd.value(), 100);
  fsys.lseek(fd.value(), 0, Seek::set);
  fsys.close(fd.value());
  const auto rd = fsys.open("/f", kRead);
  fsys.read(rd.value(), 30);
  fsys.read(rd.value(), 30);
  fsys.close(rd.value());
  const auto st = fsys.stat("/f").value();
  EXPECT_EQ(st.read_ops, 2u);
  EXPECT_EQ(st.write_ops, 1u);
  EXPECT_EQ(st.bytes_read, 60u);
  EXPECT_EQ(st.bytes_written, 100u);
  EXPECT_EQ(st.link_count, 1u);
}

TEST(FileSystem, ClockStampsTimestamps) {
  SimulatedFileSystem fsys;
  double now = 123.0;
  fsys.set_clock([&now] { return now; });
  const auto fd = fsys.creat("/f");
  EXPECT_DOUBLE_EQ(fsys.fstat(fd.value()).value().created_at, 123.0);
  now = 456.0;
  fsys.write(fd.value(), 1);
  EXPECT_DOUBLE_EQ(fsys.fstat(fd.value()).value().modified_at, 456.0);
  fsys.close(fd.value());
}

TEST(FileSystem, CountsFilesAndDirectories) {
  SimulatedFileSystem fsys;
  fsys.mkdir("/d");
  fsys.close(fsys.creat("/d/a").value());
  fsys.close(fsys.creat("/d/b").value());
  EXPECT_EQ(fsys.regular_file_count(), 2u);
  EXPECT_EQ(fsys.directory_count(), 2u);  // root + /d
  fsys.unlink("/d/a");
  EXPECT_EQ(fsys.regular_file_count(), 1u);
}

TEST(FileSystem, RelativePathsRejected) {
  SimulatedFileSystem fsys;
  EXPECT_EQ(fsys.creat("relative").status(), FsStatus::invalid_argument);
  EXPECT_EQ(fsys.mkdir(""), FsStatus::invalid_argument);
  EXPECT_EQ(fsys.stat("no-slash").status(), FsStatus::invalid_argument);
}

TEST(FileSystem, PathThroughFileRejected) {
  SimulatedFileSystem fsys;
  fsys.close(fsys.creat("/f").value());
  EXPECT_EQ(fsys.creat("/f/child").status(), FsStatus::not_a_directory);
  EXPECT_EQ(fsys.stat("/f/child").status(), FsStatus::not_a_directory);
}

TEST(ResultType, ValueAccessContracts) {
  Result<int> good(5);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(good.status(), FsStatus::ok);
  Result<int> bad(FsStatus::not_found);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_THROW(bad.value(), std::logic_error);
  EXPECT_THROW(Result<int>(FsStatus::ok), std::logic_error);
}

}  // namespace
}  // namespace wlgen::fs
