// Tests for the declarative scenario subsystem (src/scenario/) and the
// spec-driven CLI help (tools/cli_spec):
//
// * ScenarioSpec parsing — defaults, modes, model lists, overrides — and
//   its failure modes (unknown keys, mode-scoped keys, bad values, unknown
//   model parameters), all with origin:line-prefixed messages;
// * model-factory parameter-override plumbing (runner::ModelParamOverride);
// * the committed scenarios/ library: every *.scn parses, the three run
//   modes and three backends (each with >= 1 override) are all covered;
// * the end-to-end determinism pin: the same .scn yields a byte-identical
//   merged-stats digest at 1 and 8 threads, for every run mode;
// * CLI help drift-proofing: every flag a command accepts appears in its
//   generated help and in the global usage block.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "scenario/run.h"
#include "scenario/spec.h"
#include "sim/simulation.h"
#include "tools/cli_spec.h"

namespace wlgen::scenario {
namespace {

// --- spec parsing -----------------------------------------------------------

TEST(ScenarioSpec, ParsesAFullContendedScenario) {
  const ScenarioSpec spec = ScenarioSpec::parse_text(
      "[scenario]\n"
      "name = demo\n"
      "description = \"a demo; with punctuation # preserved\"\n"
      "mode = contended\n"
      "seed = 7\n"
      "threads = 2\n"
      "[workload]\n"
      "users = 1:5:2\n"
      "sessions = 4\n"
      "heavy_fraction = 0.5\n"
      "pattern = zipf\n"
      "markov = 0.3\n"
      "windows = 2\n"
      "think_time = exp(theta=4000)\n"
      "[contended]\n"
      "replications = 2\n"
      "confidence = 0.9\n"
      "[model]\n"
      "name = nfs\n"
      "nfs.readahead_blocks = 3\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.description, "a demo; with punctuation # preserved");
  EXPECT_EQ(spec.mode, RunMode::contended);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.user_points, (std::vector<std::size_t>{1, 3, 5}));
  EXPECT_EQ(spec.sessions, 4u);
  EXPECT_DOUBLE_EQ(spec.heavy_fraction, 0.5);
  EXPECT_EQ(spec.pattern, core::AccessPattern::zipf_block);
  EXPECT_DOUBLE_EQ(spec.markov, 0.3);
  EXPECT_EQ(spec.windows, 2u);
  EXPECT_EQ(spec.replications, 2u);
  EXPECT_DOUBLE_EQ(spec.confidence, 0.9);
  ASSERT_EQ(spec.models.size(), 1u);
  EXPECT_EQ(spec.models[0].name, "nfs");
  ASSERT_EQ(spec.models[0].overrides.size(), 1u);
  EXPECT_EQ(spec.models[0].overrides[0].key, "readahead_blocks");
  EXPECT_DOUBLE_EQ(spec.models[0].overrides[0].value, 3.0);
}

TEST(ScenarioSpec, DefaultsAreTheMinimalContendedRun) {
  const ScenarioSpec spec = ScenarioSpec::parse_text("[scenario]\nmode = contended\n");
  EXPECT_EQ(spec.user_points, (std::vector<std::size_t>{1}));
  EXPECT_EQ(spec.sessions, 50u);
  ASSERT_EQ(spec.models.size(), 1u);
  EXPECT_EQ(spec.models[0].name, "nfs");
  EXPECT_TRUE(spec.models[0].overrides.empty());
}

TEST(ScenarioSpec, PopulationAppliesInlineDistributionOverrides) {
  const ScenarioSpec spec = ScenarioSpec::parse_text(
      "[scenario]\nmode = sharded\n"
      "[workload]\nthink_time = constant(1234)\n");
  const core::Population population = spec.population();
  ASSERT_FALSE(population.groups.empty());
  EXPECT_DOUBLE_EQ(population.groups[0].type.think_time_us->mean(), 1234.0);
}

struct FailureCase {
  const char* text;
  const char* needle;  ///< must appear in the error message
};

class ScenarioSpecFailure : public ::testing::TestWithParam<FailureCase> {};

TEST_P(ScenarioSpecFailure, FailsWithAnnotatedMessage) {
  try {
    (void)ScenarioSpec::parse_text(GetParam().text, "bad.scn");
    FAIL() << "expected std::invalid_argument containing '" << GetParam().needle << "'";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bad.scn:"), std::string::npos)
        << "no origin:line prefix in: " << message;
    EXPECT_NE(message.find(GetParam().needle), std::string::npos)
        << "missing '" << GetParam().needle << "' in: " << message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FailureModes, ScenarioSpecFailure,
    ::testing::Values(
        FailureCase{"[scenario]\nmode = turbo\n", "sharded | contended | replay"},
        FailureCase{"[scenario]\nmode = contended\n[workload]\nusersx = 3\n",
                    "not a recognised key"},
        FailureCase{"[scenario]\nmode = sharded\n[workload]\nusers = 1:6:1\n",
                    "require scenario.mode = contended"},
        FailureCase{"[scenario]\nmode = sharded\n[contended]\nreplications = 2\n",
                    "only meaningful when scenario.mode = contended"},
        FailureCase{"[scenario]\nmode = contended\n[workload]\nheavy_fraction = 1.5\n",
                    "fraction in [0, 1]"},
        FailureCase{"[scenario]\nmode = contended\n[workload]\npattern = backwards\n",
                    "seq | random | zipf"},
        FailureCase{"[scenario]\nmode = contended\n[workload]\nsessions = none\n",
                    "non-negative integer"},
        FailureCase{"[scenario]\nmode = contended\n[model]\nname = afs\n", "unknown model"},
        FailureCase{"[scenario]\nmode = contended\n[model]\nname = nfs\n"
                    "nfs.warp_factor = 9\n",
                    "unknown parameter 'warp_factor'"},
        FailureCase{"[scenario]\nmode = contended\n[model]\nname = nfs\n"
                    "nfs.readahead_blocks = 1.5\n",
                    "non-negative integer"},
        FailureCase{"[scenario]\nmode = contended\n[model]\nname = nfs\n"
                    "local.cache_hit_us = 10\n",
                    "does not run"},
        FailureCase{"[scenario]\nmode = contended\n[output]\nlog = out.tsv\n",
                    "no merged usage log"},
        FailureCase{"[scenario]\nmode = sharded\n[sharded]\ncollect_log = false\n"
                    "[output]\nlog = out.tsv\n",
                    "empty"},
        FailureCase{"[scenario]\nmode = contended\n[workload]\nthink_time = warp(9)\n",
                    "is invalid"},
        FailureCase{"[scenario]\nmode = contended\n[log]\nspill = true\n",
                    "only meaningful when scenario.mode = sharded"},
        FailureCase{"[scenario]\nmode = sharded\n[log]\nspool_dir = /tmp/x\n",
                    "only meaningful with log.spill"},
        FailureCase{"[scenario]\nmode = sharded\n[sharded]\ncollect_log = false\n"
                    "[log]\nspill = true\n",
                    "conflicts with sharded.collect_log = false"},
        FailureCase{"[scenario]\nmode = sharded\n[log]\ncheckpoint = true\n",
                    "requires log.spill = true"},
        FailureCase{"[scenario]\nmode = sharded\n[sharded]\nresume = true\n",
                    "requires log.checkpoint = true"},
        // Open-system traffic sections (src/traffic/, docs/SCENARIOS.md).
        FailureCase{"[scenario]\nmode = sharded\n[arrivals]\nrate = -1\n",
                    "positive session arrival rate"},
        FailureCase{"[scenario]\nmode = sharded\n[arrivals]\nprocess = lava\n",
                    "poisson | mmpp | heavy"},
        FailureCase{"[scenario]\nmode = sharded\n[arrivals]\nflash_at = 5\n",
                    "needs arrivals.flash_duration"},
        FailureCase{"[scenario]\nmode = sharded\n[workload]\nwindows = 2\n"
                    "[arrivals]\nrate = 1\n",
                    "conflicts with [arrivals]"},
        // Unknown fault kind: only slowdown/flush/churn exist.
        FailureCase{"[scenario]\nmode = sharded\n[faults]\nblackout = 1:2\n",
                    "not a recognised key"},
        FailureCase{"[scenario]\nmode = sharded\n[faults]\nslowdown = 5:2:3\n",
                    "inverted or empty"},
        FailureCase{"[scenario]\nmode = sharded\n[faults]\nslowdown = 0:10:2, 5:15:2\n",
                    "windows overlap"},
        FailureCase{"[scenario]\nmode = sharded\n[faults]\nslowdown = 0:10\n",
                    "expects 3 colon-separated numbers"},
        FailureCase{"[scenario]\nmode = sharded\n[faults]\nchurn = 0:10:1.5\n",
                    "fraction must be in [0, 1]"},
        FailureCase{"[scenario]\nmode = replay\n[arrivals]\nrate = 1\n",
                    "not meaningful under scenario.mode = replay"}));

// --- model parameter overrides ---------------------------------------------

TEST(ModelOverrides, ApplyToEachBackend) {
  sim::Simulation sim;

  const auto nfs = runner::model_factory_by_name("nfs", {{"readahead_blocks", 4.0}})(sim);
  EXPECT_EQ(dynamic_cast<fsmodel::NfsModel&>(*nfs).params().readahead_blocks, 4u);

  const auto local =
      runner::model_factory_by_name("local", {{"buffer_cache_blocks", 99.0}})(sim);
  EXPECT_EQ(dynamic_cast<fsmodel::LocalDiskModel&>(*local).params().buffer_cache_blocks, 99u);

  const auto wholefile =
      runner::model_factory_by_name("wholefile", {{"cache_files", 7.0}})(sim);
  EXPECT_EQ(dynamic_cast<fsmodel::WholeFileCacheModel&>(*wholefile).params().cache_files, 7u);
}

TEST(ModelOverrides, RejectBadKeysAndDomains) {
  EXPECT_THROW(runner::model_factory_by_name("nfs", {{"nope", 1.0}}), std::invalid_argument);
  // Integral parameter, fractional value.
  EXPECT_THROW(runner::model_factory_by_name("nfs", {{"block_size", 0.5}}),
               std::invalid_argument);
  // Boolean parameter only takes 0/1.
  EXPECT_THROW(runner::model_factory_by_name("nfs", {{"async_writes", 2.0}}),
               std::invalid_argument);
  EXPECT_NO_THROW(runner::model_factory_by_name("nfs", {{"async_writes", 0.0}}));
  EXPECT_THROW(runner::model_param_keys("afs"), std::invalid_argument);
  // The key list is the override universe.
  const auto keys = runner::model_param_keys("local");
  EXPECT_NE(std::find(keys.begin(), keys.end(), "cache_hit_us"), keys.end());
}

// --- end-to-end thread invariance ------------------------------------------

std::string digest_with_threads(const std::string& text, std::size_t threads) {
  const ScenarioSpec spec = ScenarioSpec::parse_text(text);
  RunOptions options;
  options.threads = threads;
  return run_scenario(spec, options).stats_digest;
}

TEST(ScenarioRun, ContendedDigestIsThreadCountInvariant) {
  const std::string text =
      "[scenario]\nmode = contended\nname = pin\n"
      "[workload]\nusers = 1:3:1\nsessions = 2\n"
      "[contended]\nreplications = 2\n"
      "[model]\nname = nfs\n";
  const std::string one = digest_with_threads(text, 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, digest_with_threads(text, 8));
}

TEST(ScenarioRun, ShardedDigestIsThreadCountInvariant) {
  const std::string text =
      "[scenario]\nmode = sharded\nname = pin\n"
      "[workload]\nusers = 6\nsessions = 2\n"
      "[sharded]\nshards = 3\n"
      "[model]\nname = local\nlocal.buffer_cache_blocks = 512\n";
  const std::string one = digest_with_threads(text, 1);
  EXPECT_EQ(one, digest_with_threads(text, 8));
}

TEST(ScenarioRun, MultiModelDigestIsThreadCountInvariant) {
  // Three backends fan over the worker pool (scenario/run.cpp); the digest
  // folds per-index slots in spec order, so any --threads must reproduce the
  // serial digest byte for byte — the scenario-parallelism contract.
  const std::string text =
      "[scenario]\nmode = sharded\nname = pin-multi\n"
      "[workload]\nusers = 6\nsessions = 2\n"
      "[sharded]\nshards = 2\n"
      "[model]\nnames = nfs, local, wholefile\n";
  const std::string one = digest_with_threads(text, 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, digest_with_threads(text, 8));
  // Model sections appear in spec order regardless of completion order.
  EXPECT_LT(one.find("model nfs"), one.find("model local"));
  EXPECT_LT(one.find("model local"), one.find("model wholefile"));
}

TEST(ScenarioSpec, DrawBatchParsesAndRejectsZero) {
  const ScenarioSpec spec = ScenarioSpec::parse_text(
      "[scenario]\nmode = sharded\nname = batch\n"
      "[workload]\nusers = 2\ndraw_batch = 16\n"
      "[model]\nname = nfs\n");
  EXPECT_EQ(spec.draw_batch, 16u);
  EXPECT_EQ(spec.usim_config().draw_batch, 16u);
  EXPECT_NE(spec.summary().find("draw batch: 16"), std::string::npos);
  EXPECT_THROW(ScenarioSpec::parse_text("[scenario]\nmode = sharded\nname = b\n"
                                        "[workload]\nusers = 1\ndraw_batch = 0\n"
                                        "[model]\nname = nfs\n"),
               std::invalid_argument);
}

TEST(ScenarioRun, DrawBatchDigestIsThreadCountInvariant) {
  const std::string text =
      "[scenario]\nmode = sharded\nname = pin-batch\n"
      "[workload]\nusers = 4\nsessions = 2\ndraw_batch = 8\n"
      "[sharded]\nshards = 2\n"
      "[model]\nname = nfs\n";
  EXPECT_EQ(digest_with_threads(text, 1), digest_with_threads(text, 8));
}

// --- streaming spill at the scenario layer ----------------------------------

TEST(ScenarioSpec, LogSpillParsesDefaultsAndSummary) {
  const ScenarioSpec spec = ScenarioSpec::parse_text(
      "[scenario]\nmode = sharded\nname = Spill Demo\n"
      "[log]\nspill = true\ncheckpoint = true\n");
  EXPECT_TRUE(spec.log_spill);
  EXPECT_TRUE(spec.log_checkpoint);
  EXPECT_FALSE(spec.resume);
  // Default spool directory derives from the scenario name.
  EXPECT_EQ(spec.log_spool_dir, ".wlgen-spool/spill_demo");
  EXPECT_NE(spec.summary().find("log: spill -> .wlgen-spool/spill_demo, checkpointed"),
            std::string::npos);
}

std::string spill_scenario_text(const std::string& spool, const std::string& log_extra = "",
                                const std::string& sharded_extra = "") {
  return
      "[scenario]\nmode = sharded\nname = pin-spill\n"
      "[workload]\nusers = 6\nsessions = 2\n"
      "[sharded]\nshards = 3\n" + sharded_extra +
      "[log]\nspill = true\nspool_dir = " + spool + "\n" + log_extra +
      "[model]\nname = nfs\n";
}

TEST(ScenarioRun, SpillDigestMatchesInMemoryDigestAtBothThreadCounts) {
  // The headline scenario-level pin: turning the spill pipeline on (any
  // thread count) must not move the stats digest by a single byte relative
  // to the historical in-memory path.
  const std::string in_memory_text =
      "[scenario]\nmode = sharded\nname = pin-spill\n"
      "[workload]\nusers = 6\nsessions = 2\n"
      "[sharded]\nshards = 3\n"
      "[model]\nname = nfs\n";
  const auto spool = std::filesystem::path(::testing::TempDir()) / "wlgen_scn_spill";
  std::filesystem::remove_all(spool);
  const std::string spill_text = spill_scenario_text(spool.string());

  const std::string reference = digest_with_threads(in_memory_text, 1);
  EXPECT_FALSE(reference.empty());
  EXPECT_NE(reference.find("response_sketch"), std::string::npos);
  EXPECT_EQ(digest_with_threads(spill_text, 1), reference);
  std::filesystem::remove_all(spool);
  EXPECT_EQ(digest_with_threads(spill_text, 8), reference);
  std::filesystem::remove_all(spool);
}

TEST(ScenarioRun, ResumedScenarioReproducesTheDigest) {
  const auto spool = std::filesystem::path(::testing::TempDir()) / "wlgen_scn_resume";
  std::filesystem::remove_all(spool);
  const std::string checkpointed = spill_scenario_text(spool.string(), "checkpoint = true\n");
  const std::string resumed =
      spill_scenario_text(spool.string(), "checkpoint = true\n", "resume = true\n");

  const std::string first = digest_with_threads(checkpointed, 2);
  // Second run resumes every shard from the spool and must reproduce the
  // digest byte for byte — the crash-recovery contract.
  EXPECT_EQ(digest_with_threads(resumed, 2), first);
  std::filesystem::remove_all(spool);
}

TEST(ScenarioRun, SpilledScenarioStillWritesTheOutputLog) {
  const auto spool = std::filesystem::path(::testing::TempDir()) / "wlgen_scn_outlog";
  const auto log_path = std::filesystem::path(::testing::TempDir()) / "wlgen_scn_outlog.tsv";
  std::filesystem::remove_all(spool);
  std::filesystem::remove(log_path);
  const std::string text =
      spill_scenario_text(spool.string()) + "[output]\nlog = " + log_path.string() + "\n";
  const ScenarioOutcome outcome = run_scenario(ScenarioSpec::parse_text(text));
  ASSERT_EQ(outcome.models.size(), 1u);
  EXPECT_FALSE(outcome.models[0].spilled_runs.empty());
  EXPECT_GT(outcome.models[0].response_sketch.count(), 0u);
  EXPECT_TRUE(std::filesystem::exists(log_path));
  EXPECT_GT(std::filesystem::file_size(log_path), 0u);
  std::filesystem::remove_all(spool);
  std::filesystem::remove(log_path);
}

TEST(ScenarioRun, ReplayModeRunsTheAbComparison) {
  const std::string text =
      "[scenario]\nmode = replay\nname = ab\n"
      "[workload]\nusers = 1\nsessions = 2\n"
      "[replay]\nclosed_loop = true\nsynthetic_users = 2\n"
      "[model]\nname = nfs\n";
  const ScenarioSpec spec = ScenarioSpec::parse_text(text);
  const ScenarioOutcome outcome = run_scenario(spec);
  ASSERT_EQ(outcome.models.size(), 1u);
  ASSERT_EQ(outcome.models[0].points.size(), 2u);  // replay leg + synthetic leg
  EXPECT_EQ(outcome.models[0].points[0].users, 1u);
  EXPECT_EQ(outcome.models[0].points[1].users, 2u);
  EXPECT_GT(outcome.models[0].points[0].ops, 0u);
  EXPECT_GT(outcome.models[0].points[1].ops, 0u);
  EXPECT_FALSE(outcome.models[0].log.empty());
  // Replay is serial; the digest must still be invariant to the knob.
  EXPECT_EQ(digest_with_threads(text, 1), digest_with_threads(text, 8));
}

TEST(ScenarioRun, MultiModelScenarioReportsEveryBackend) {
  const std::string text =
      "[scenario]\nmode = contended\nname = compare\n"
      "[workload]\nusers = 2\nsessions = 2\n"
      "[contended]\nreplications = 1\n"
      "[model]\nnames = nfs, local, wholefile\n";
  const ScenarioOutcome outcome = run_scenario(ScenarioSpec::parse_text(text));
  ASSERT_EQ(outcome.models.size(), 3u);
  EXPECT_EQ(outcome.models[0].model, "nfs");
  EXPECT_EQ(outcome.models[1].model, "local");
  EXPECT_EQ(outcome.models[2].model, "wholefile");
  for (const auto& model : outcome.models) {
    ASSERT_EQ(model.points.size(), 1u);
    EXPECT_GT(model.points[0].ops, 0u);
  }
  EXPECT_NE(outcome.report.find("comparison"), std::string::npos);
}

// --- the committed scenario library ----------------------------------------

#ifdef WLGEN_SOURCE_DIR

TEST(ScenarioLibrary, EveryCommittedScenarioParsesAndCoversTheMatrix) {
  const std::vector<std::string> files =
      scenario_files(std::string(WLGEN_SOURCE_DIR) + "/scenarios");
  ASSERT_GE(files.size(), 5u);

  std::set<RunMode> modes;
  std::set<std::string> overridden_models;
  for (const auto& file : files) {
    const ScenarioSpec spec = ScenarioSpec::parse_file(file);
    EXPECT_FALSE(spec.name.empty()) << file;
    EXPECT_FALSE(spec.description.empty()) << file;
    modes.insert(spec.mode);
    for (const auto& model : spec.models) {
      if (!model.overrides.empty()) overridden_models.insert(model.name);
      // Each choice must compile to a working factory.
      sim::Simulation sim;
      EXPECT_NE(model.factory()(sim), nullptr) << file;
    }
  }
  // Acceptance matrix: all three run modes, all three backends reachable
  // with at least one parameter override each.
  EXPECT_EQ(modes.size(), 3u);
  EXPECT_TRUE(overridden_models.count("nfs"));
  EXPECT_TRUE(overridden_models.count("local"));
  EXPECT_TRUE(overridden_models.count("wholefile"));
}

TEST(ScenarioLibrary, QuickstartRunsEndToEnd) {
  const ScenarioSpec spec =
      ScenarioSpec::parse_file(std::string(WLGEN_SOURCE_DIR) + "/scenarios/quickstart.scn");
  const ScenarioOutcome outcome = run_scenario(spec);
  ASSERT_EQ(outcome.models.size(), 1u);
  EXPECT_GT(outcome.models[0].points[0].ops, 0u);
  EXPECT_GT(outcome.models[0].points[0].sessions, 0u);
}

#endif  // WLGEN_SOURCE_DIR

// --- drift-proof CLI help ---------------------------------------------------

TEST(CliSpec, EveryFlagAppearsInItsCommandHelpAndTheUsageBlock) {
  const std::string usage = util::render_usage("wlgen", cli::command_specs());
  ASSERT_FALSE(cli::command_specs().empty());
  for (const auto& command : cli::command_specs()) {
    EXPECT_NE(usage.find("wlgen " + command.name), std::string::npos)
        << "command '" << command.name << "' missing from usage block";
    const std::string help = util::render_command_help("wlgen", command);
    for (const auto& flag : command.flags) {
      EXPECT_NE(usage.find("--" + flag.name), std::string::npos)
          << "--" << flag.name << " missing from usage block";
      EXPECT_NE(help.find("--" + flag.name), std::string::npos)
          << "--" << flag.name << " missing from 'wlgen " << command.name << " --help'";
      EXPECT_FALSE(flag.help.empty()) << "--" << flag.name << " has no help text";
    }
    // The implicit --help is part of the parser contract and the help text.
    EXPECT_TRUE(command.flag_names().count("help"));
    EXPECT_NE(help.find("--help"), std::string::npos);
  }
}

TEST(CliSpec, CommandTableCoversTheCliSurface) {
  for (const char* name : {"gds", "run", "analyze", "replay", "experiments", "scenario"}) {
    EXPECT_NO_THROW((void)cli::command_spec(name)) << name;
  }
  EXPECT_THROW((void)cli::command_spec("teleport"), std::invalid_argument);
}

TEST(CliSpec, BooleanFlagsAreDeclaredBoolean) {
  // The flags the parser must never let swallow the next token.  This is
  // the spec-level pin of the historical `experiments --check fig5_1` bug:
  // if someone re-declares one of these with a value metavar, this fails.
  const std::set<std::string>& booleans = cli::boolean_flags();
  for (const char* name :
       {"check", "list", "verbose", "contended", "verify-merge", "closed-loop", "help"}) {
    EXPECT_TRUE(booleans.count(name)) << name;
  }
  // And value-taking flags must not be in the boolean set.
  for (const char* name : {"users", "model", "threads", "print", "out"}) {
    EXPECT_FALSE(booleans.count(name)) << name;
  }
}

}  // namespace
}  // namespace wlgen::scenario
