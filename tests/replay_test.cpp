// Tests for the trace replayer (the related-work "trace data" workload
// source) — open/closed loop semantics, rescaling, and cross-model replay.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/replay.h"
#include "core/usim.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"

namespace wlgen::core {
namespace {

/// Records a short trace by running the generator once.
UsageLog record_trace(std::size_t users = 2, std::size_t sessions = 3) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  FscConfig fsc_config;
  fsc_config.num_users = users;
  FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
  const CreatedFileSystem manifest = fsc.create();
  UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  UserSimulator usim(simulation, fsys, nfs, manifest, default_population(), config);
  usim.run();
  return usim.log();
}

TEST(Replay, OpenLoopReplaysEveryOp) {
  const UsageLog trace = record_trace();
  sim::Simulation simulation;
  fsmodel::NfsModel nfs(simulation);
  TraceReplayer replayer(simulation, nfs, trace);
  const UsageLog replayed = replayer.run();
  EXPECT_EQ(replayed.size(), trace.size());
  EXPECT_EQ(replayer.ops_replayed(), trace.size());
}

TEST(Replay, OpenLoopPreservesIssueTimes) {
  const UsageLog trace = record_trace();
  sim::Simulation simulation;
  fsmodel::NfsModel nfs(simulation);
  TraceReplayer replayer(simulation, nfs, trace);
  const UsageLog replayed = replayer.run();

  const double base = trace.records().front().issue_time_us;
  // Issue times shift to a zero base but keep their relative spacing — the
  // open-loop property that makes trace replay blind to the new system.
  std::map<std::uint64_t, double> recorded;  // keyed per (user, op index approximation)
  ASSERT_EQ(replayed.size(), trace.size());
  std::vector<double> original_offsets, replayed_times;
  for (const auto& r : trace.records()) original_offsets.push_back(r.issue_time_us - base);
  for (const auto& r : replayed.records()) replayed_times.push_back(r.issue_time_us);
  std::sort(original_offsets.begin(), original_offsets.end());
  std::sort(replayed_times.begin(), replayed_times.end());
  for (std::size_t i = 0; i < original_offsets.size(); ++i) {
    EXPECT_NEAR(replayed_times[i], original_offsets[i], 1e-6);
  }
}

TEST(Replay, TimeScaleStretchesTheClock) {
  const UsageLog trace = record_trace(1, 2);
  const auto makespan = [&](double scale) {
    sim::Simulation simulation;
    fsmodel::NfsModel nfs(simulation);
    TraceReplayer replayer(simulation, nfs, trace);
    TraceReplayer::Options options;
    options.time_scale = scale;
    replayer.run(options);
    return simulation.now();
  };
  EXPECT_GT(makespan(2.0), makespan(1.0) * 1.5);
}

TEST(Replay, ClosedLoopReplaysEveryOpInUserOrder) {
  const UsageLog trace = record_trace();
  sim::Simulation simulation;
  fsmodel::LocalDiskModel local(simulation);
  TraceReplayer replayer(simulation, local, trace);
  TraceReplayer::Options options;
  options.preserve_timing = false;
  const UsageLog replayed = replayer.run(options);
  EXPECT_EQ(replayed.size(), trace.size());

  // Per user, ops complete in their recorded order (the chain property).
  std::map<std::uint32_t, double> last_issue;
  std::map<std::uint32_t, std::size_t> count;
  for (const auto& r : replayed.records()) {
    EXPECT_GE(r.issue_time_us, last_issue[r.user]);
    last_issue[r.user] = r.issue_time_us;
    ++count[r.user];
  }
  std::map<std::uint32_t, std::size_t> original_count;
  for (const auto& r : trace.records()) ++original_count[r.user];
  EXPECT_EQ(count, original_count);
}

TEST(Replay, ResponsesAreRemeasuredOnTheNewModel) {
  const UsageLog trace = record_trace(1, 3);
  sim::Simulation simulation;
  fsmodel::LocalDiskModel local(simulation);
  TraceReplayer replayer(simulation, local, trace);
  TraceReplayer::Options options;
  options.preserve_timing = false;
  const UsageLog replayed = replayer.run(options);

  const UsageAnalyzer original(trace);
  const UsageAnalyzer rerun(replayed);
  // Same ops, different system: byte counts identical, responses not.
  EXPECT_DOUBLE_EQ(rerun.access_size_stats().mean(), original.access_size_stats().mean());
  EXPECT_NE(rerun.response_stats().mean(), original.response_stats().mean());
}

TEST(Replay, RunTwiceRejected) {
  const UsageLog trace = record_trace(1, 1);
  sim::Simulation simulation;
  fsmodel::NfsModel nfs(simulation);
  TraceReplayer replayer(simulation, nfs, trace);
  replayer.run();
  EXPECT_THROW(replayer.run(), std::logic_error);
}

TEST(Replay, RejectsBadScale) {
  const UsageLog trace = record_trace(1, 1);
  sim::Simulation simulation;
  fsmodel::NfsModel nfs(simulation);
  TraceReplayer replayer(simulation, nfs, trace);
  TraceReplayer::Options options;
  options.time_scale = 0.0;
  EXPECT_THROW(replayer.run(options), std::invalid_argument);
}

TEST(Replay, EmptyTraceIsFine) {
  UsageLog empty;
  sim::Simulation simulation;
  fsmodel::NfsModel nfs(simulation);
  TraceReplayer replayer(simulation, nfs, empty);
  EXPECT_EQ(replayer.run().size(), 0u);
}

}  // namespace
}  // namespace wlgen::core
