// End-to-end integration tests: the full GDS -> FSC -> USIM -> Analyzer
// pipeline must exhibit the paper's qualitative results (in miniature, so
// the suite stays fast).

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/spec.h"
#include "core/usim.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "stats/tests.h"

namespace wlgen::core {
namespace {

/// Runs one experiment: `users` simultaneous users of `population` for
/// `sessions` sessions each against a fresh NFS rig; returns the analyzer.
struct ExperimentResult {
  double response_per_byte = 0.0;
  double mean_response = 0.0;
  double mean_access = 0.0;
  std::uint64_t ops = 0;
};

ExperimentResult run_experiment(std::size_t users, const Population& population,
                                std::size_t sessions, std::uint64_t seed = 11) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsModel nfs(simulation);
  FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = seed;
  FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
  const CreatedFileSystem manifest = fsc.create();
  UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.seed = seed;
  UserSimulator usim(simulation, fsys, nfs, manifest, population, config);
  usim.run();
  const UsageAnalyzer analyzer(usim.log());
  ExperimentResult r;
  r.response_per_byte = analyzer.response_per_byte_us();
  r.mean_response = analyzer.response_stats().mean();
  r.mean_access = analyzer.access_size_stats().mean();
  r.ops = analyzer.op_count();
  return r;
}

Population extreme_population() {
  Population p;
  p.groups.push_back({extremely_heavy_user(), 1.0});
  p.validate_and_normalize();
  return p;
}

TEST(Integration, Table53AccessSizeRegime) {
  // Paper Table 5.3: measured mean access ~947 B (input mean 1024), std of
  // the same order as the mean, response std >> response mean.
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  FscConfig fsc_config;
  FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
  const CreatedFileSystem manifest = fsc.create();
  UsimConfig config;
  config.sessions_per_user = 25;
  UserSimulator usim(simulation, fsys, nfs, manifest, default_population(), config);
  usim.run();
  const UsageAnalyzer analyzer(usim.log());

  const auto access = analyzer.access_size_stats();
  EXPECT_GT(access.mean(), 700.0);
  EXPECT_LT(access.mean(), 1024.0);
  EXPECT_NEAR(access.stddev(), access.mean(), access.mean() * 0.35);

  const auto response = analyzer.response_stats();
  EXPECT_GT(response.stddev(), 2.0 * response.mean());
}

TEST(Integration, ResponseGrowsWithUserCount) {
  // The Figure 5.6/5.7 mechanism: more simultaneous users => more contention
  // => higher response per byte.
  const auto one = run_experiment(1, extreme_population(), 6);
  const auto six = run_experiment(6, extreme_population(), 6);
  EXPECT_GT(six.response_per_byte, one.response_per_byte * 1.5);
}

TEST(Integration, ExtremeUsersSeeWorseResponseThanLightUsers) {
  // Zero think time saturates the server; light users keep it mostly idle.
  Population light;
  light.groups.push_back({light_user(), 1.0});
  light.validate_and_normalize();
  const auto extreme = run_experiment(4, extreme_population(), 5);
  const auto relaxed = run_experiment(4, light, 5);
  EXPECT_GT(extreme.response_per_byte, relaxed.response_per_byte);
}

TEST(Integration, LargerAccessSizesLowerPerByteCost) {
  // Figure 5.12: response time per byte falls as the access size grows.
  const auto with_mean = [](double mean) {
    Population p;
    p.groups.push_back({with_access_size_mean(extremely_heavy_user(), mean), 1.0});
    p.validate_and_normalize();
    return run_experiment(1, p, 15);
  };
  const auto small = with_mean(128.0);
  const auto large = with_mean(2048.0);
  EXPECT_GT(small.response_per_byte, large.response_per_byte * 1.35);
}

TEST(Integration, FileSystemComparisonProcedure) {
  // Section 5.3: the same workload, three candidate file systems.  The
  // identical population with no network must beat NFS.
  const auto response_for = [](int which) {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    std::unique_ptr<fsmodel::FileSystemModel> model;
    if (which == 0) {
      model = std::make_unique<fsmodel::NfsModel>(simulation);
    } else if (which == 1) {
      model = std::make_unique<fsmodel::LocalDiskModel>(simulation);
    } else {
      model = std::make_unique<fsmodel::WholeFileCacheModel>(simulation);
    }
    FscConfig fsc_config;
    fsc_config.seed = 77;
    FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
    const CreatedFileSystem manifest = fsc.create();
    UsimConfig config;
    config.sessions_per_user = 8;
    config.seed = 77;
    UserSimulator usim(simulation, fsys, *model, manifest, default_population(), config);
    usim.run();
    return UsageAnalyzer(usim.log()).response_per_byte_us();
  };
  const double nfs = response_for(0);
  const double local = response_for(1);
  EXPECT_LT(local, nfs);  // identical workload, no network => faster
  EXPECT_GT(nfs, 0.0);
  EXPECT_GT(response_for(2), 0.0);
}

TEST(Integration, GdsDistributionsDriveUsim) {
  // Custom distributions flow end to end: a constant 256-byte access size
  // must show up as (at most) 256-byte accesses in the log.
  DistributionSpecifier gds;
  gds.load_spec_text(
      "think = constant(1000)\n"
      "access = constant(256)\n");
  UserType custom = heavy_user();
  custom.think_time_us = gds.get("think");
  custom.access_size_bytes = gds.get("access");
  Population population;
  population.groups.push_back({custom, 1.0});
  population.validate_and_normalize();

  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  FscConfig fsc_config;
  FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
  const CreatedFileSystem manifest = fsc.create();
  UsimConfig config;
  config.sessions_per_user = 3;
  UserSimulator usim(simulation, fsys, nfs, manifest, population, config);
  usim.run();

  for (const auto& r : usim.log().records()) {
    if (fsmodel::is_data_op(r.op)) {
      EXPECT_LE(r.requested_bytes, 256u);
    }
  }
}

TEST(Integration, LogRoundTripPreservesAnalysis) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  FscConfig fsc_config;
  FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
  const CreatedFileSystem manifest = fsc.create();
  UsimConfig config;
  config.sessions_per_user = 3;
  UserSimulator usim(simulation, fsys, nfs, manifest, default_population(), config);
  usim.run();

  const UsageLog reloaded = UsageLog::parse(usim.log().serialize());
  const UsageAnalyzer a(usim.log());
  const UsageAnalyzer b(reloaded);
  EXPECT_EQ(a.sessions().size(), b.sessions().size());
  EXPECT_DOUBLE_EQ(a.response_per_byte_us(), b.response_per_byte_us());
  EXPECT_DOUBLE_EQ(a.access_size_stats().mean(), b.access_size_stats().mean());
}

TEST(Integration, GeneratedAccessSizesPassKsAgainstTruncatedInput) {
  // The *requested* access sizes (before EOF truncation) must follow the
  // input exponential; a two-sample KS against fresh draws checks the whole
  // sampling path.
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  FscConfig fsc_config;
  FileSystemCreator fsc(fsys, di86_file_profiles(), fsc_config);
  const CreatedFileSystem manifest = fsc.create();
  UsimConfig config;
  config.sessions_per_user = 10;
  UserSimulator usim(simulation, fsys, nfs, manifest, default_population(), config);
  usim.run();

  std::vector<double> requested;
  for (const auto& r : usim.log().records()) {
    if (fsmodel::is_data_op(r.op) && r.requested_bytes > 0) {
      requested.push_back(static_cast<double>(r.requested_bytes));
    }
  }
  ASSERT_GT(requested.size(), 500u);
  util::RngStream rng(123, "ks-ref");
  std::vector<double> reference;
  reference.reserve(requested.size());
  for (std::size_t i = 0; i < requested.size(); ++i) {
    reference.push_back(std::max(1.0, std::round(rng.exponential(1024.0))));
  }
  // Write sizes are clipped by remaining write targets, so compare only the
  // bulk of the distribution: medians within 10%.
  std::sort(requested.begin(), requested.end());
  std::sort(reference.begin(), reference.end());
  const double med_req = requested[requested.size() / 2];
  const double med_ref = reference[reference.size() / 2];
  EXPECT_NEAR(med_req / med_ref, 1.0, 0.15);
}

}  // namespace
}  // namespace wlgen::core
