// Unit and property tests for src/dist: every distribution family must have
// a consistent pdf/cdf/mean/variance/quantile/sample contract; CDF tables
// and fitting are validated against known inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "dist/basic.h"
#include "dist/cdf_table.h"
#include "dist/fitting.h"
#include "dist/multistage_gamma.h"
#include "dist/phase_exponential.h"
#include "dist/tabulated.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace wlgen::dist {
namespace {

util::RngStream test_rng() { return util::RngStream(20260611, "dist-test"); }

// ---------------------------------------------------------------------------
// Family-generic property tests: every distribution must satisfy the same
// contract, so sweep a representative zoo through one parameterized suite.
// ---------------------------------------------------------------------------

struct Zoo {
  std::string name;
  DistributionPtr dist;
};

std::vector<std::string> zoo_names() {
  return {"exponential", "shifted_exponential", "uniform",      "phase_exp_1",
          "phase_exp_3",  "gamma_1",             "gamma_3",      "tab_pdf",
          "tab_cdf",      "empirical"};
}

DistributionPtr make_zoo(const std::string& name) {
  if (name == "exponential") return std::make_unique<ExponentialDistribution>(50.0);
  if (name == "shifted_exponential") return std::make_unique<ExponentialDistribution>(30.0, 10.0);
  if (name == "uniform") return std::make_unique<UniformDistribution>(5.0, 25.0);
  if (name == "phase_exp_1") {
    return std::make_unique<PhaseTypeExponential>(PhaseTypeExponential::paper_example_a());
  }
  if (name == "phase_exp_3") {
    return std::make_unique<PhaseTypeExponential>(PhaseTypeExponential::paper_example_c());
  }
  if (name == "gamma_1") {
    return std::make_unique<MultiStageGamma>(MultiStageGamma::paper_example_b());
  }
  if (name == "gamma_3") {
    return std::make_unique<MultiStageGamma>(MultiStageGamma::paper_example_c());
  }
  if (name == "tab_pdf") {
    return std::make_unique<TabulatedPdf>(std::vector<double>{0, 10, 20, 30, 40},
                                          std::vector<double>{0.0, 2.0, 3.0, 1.0, 0.0});
  }
  if (name == "tab_cdf") {
    return std::make_unique<TabulatedCdf>(std::vector<double>{0, 5, 15, 40},
                                          std::vector<double>{0.0, 0.3, 0.8, 1.0});
  }
  if (name == "empirical") {
    std::vector<double> data;
    util::RngStream rng(3, "zoo");
    for (int i = 0; i < 500; ++i) data.push_back(rng.exponential(20.0));
    return std::make_unique<EmpiricalDistribution>(std::move(data));
  }
  throw std::logic_error("unknown zoo member " + name);
}

class DistributionContract : public ::testing::TestWithParam<std::string> {};

TEST_P(DistributionContract, CdfIsMonotoneNonDecreasingInZeroOneRange) {
  const auto d = make_zoo(GetParam());
  const double lo = d->quantile(0.001);
  const double hi = d->quantile(0.999);
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    const double c = d->cdf(x);
    EXPECT_GE(c, prev - 1e-12) << "at x=" << x;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionContract, PdfIsNonNegative) {
  const auto d = make_zoo(GetParam());
  const double lo = d->quantile(0.001) - 1.0;
  const double hi = d->quantile(0.999) + 1.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    EXPECT_GE(d->pdf(x), 0.0) << "at x=" << x;
  }
}

TEST_P(DistributionContract, PdfIntegratesToOne) {
  const auto d = make_zoo(GetParam());
  double lo = d->lower_bound();
  if (!std::isfinite(lo)) lo = d->quantile(1e-6);
  double hi = d->upper_bound();
  if (!std::isfinite(hi)) hi = d->quantile(1.0 - 1e-7);
  const double mass =
      util::simpson([&](double x) { return d->pdf(x); }, lo, hi, 20000);
  // The empirical pdf is a boundary-clipped finite-difference estimate; give
  // it a looser budget than the closed-form families.
  const double tolerance = GetParam() == "empirical" ? 0.05 : 0.02;
  EXPECT_NEAR(mass, 1.0, tolerance) << d->describe();
}

TEST_P(DistributionContract, QuantileInvertsCdf) {
  const auto d = make_zoo(GetParam());
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = d->quantile(p);
    EXPECT_NEAR(d->cdf(x), p, 0.01) << d->describe() << " p=" << p;
  }
}

TEST_P(DistributionContract, SampleMeanMatchesAnalyticMean) {
  const auto d = make_zoo(GetParam());
  auto rng = test_rng();
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += d->sample(rng);
  const double tolerance = 4.0 * d->stddev() / std::sqrt(static_cast<double>(n)) + 1e-6;
  EXPECT_NEAR(sum / n, d->mean(), tolerance) << d->describe();
}

TEST_P(DistributionContract, SampleVarianceMatchesAnalyticVariance) {
  const auto d = make_zoo(GetParam());
  auto rng = test_rng();
  double sum = 0.0, sum2 = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const double v = d->sample(rng);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(var, d->variance(), 0.15 * d->variance() + 1e-6) << d->describe();
}

TEST_P(DistributionContract, SamplesLieInSupport) {
  const auto d = make_zoo(GetParam());
  auto rng = test_rng();
  for (int i = 0; i < 2000; ++i) {
    const double v = d->sample(rng);
    EXPECT_GE(v, d->lower_bound() - 1e-9);
    EXPECT_LE(v, d->upper_bound() + 1e-9);
  }
}

TEST_P(DistributionContract, CloneIsEquivalent) {
  const auto d = make_zoo(GetParam());
  const auto copy = d->clone();
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(copy->quantile(p), d->quantile(p));
  }
  EXPECT_DOUBLE_EQ(copy->mean(), d->mean());
  EXPECT_EQ(copy->describe(), d->describe());
}

TEST_P(DistributionContract, CdfTableSamplingMatchesDirectMoments) {
  const auto d = make_zoo(GetParam());
  const CdfTable table = build_cdf_table(*d, 512);
  auto rng = test_rng();
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += table.sample(rng);
  EXPECT_NEAR(sum / n, d->mean(), 0.05 * (std::fabs(d->mean()) + d->stddev()) + 1e-6)
      << d->describe();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionContract, ::testing::ValuesIn(zoo_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Family-specific tests.
// ---------------------------------------------------------------------------

TEST(Constant, Degenerate) {
  ConstantDistribution d(5.0);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.999), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(5.0), 1.0);
  auto rng = test_rng();
  EXPECT_DOUBLE_EQ(d.sample(rng), 5.0);
}

TEST(Exponential, ClosedForms) {
  ExponentialDistribution d(10.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 12.0);
  EXPECT_DOUBLE_EQ(d.variance(), 100.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.0);
  EXPECT_NEAR(d.cdf(12.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.quantile(0.5), 2.0 + 10.0 * std::log(2.0), 1e-12);
  EXPECT_THROW(ExponentialDistribution(0.0), std::invalid_argument);
}

TEST(PhaseExp, PaperEquationForm) {
  // f(x) = sum w_i (1/theta_i) exp(-(x - s_i)/theta_i) on x >= s_i.
  PhaseTypeExponential d({{0.4, 12.7, 0.0}, {0.6, 18.2, 18.0}});
  const double x = 25.0;
  const double expected = 0.4 * std::exp(-x / 12.7) / 12.7 +
                          0.6 * std::exp(-(x - 18.0) / 18.2) / 18.2;
  EXPECT_NEAR(d.pdf(x), expected, 1e-12);
  // Before the second phase starts only the first contributes.
  EXPECT_NEAR(d.pdf(10.0), 0.4 * std::exp(-10.0 / 12.7) / 12.7, 1e-12);
}

TEST(PhaseExp, WeightsNormalized) {
  PhaseTypeExponential d({{2.0, 10.0, 0.0}, {2.0, 20.0, 0.0}});
  EXPECT_DOUBLE_EQ(d.phases()[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5 * 10.0 + 0.5 * 20.0);
}

TEST(PhaseExp, MeanOfShiftedMixture) {
  PhaseTypeExponential d({{0.25, 5.0, 1.0}, {0.75, 10.0, 3.0}});
  EXPECT_DOUBLE_EQ(d.mean(), 0.25 * 6.0 + 0.75 * 13.0);
}

TEST(PhaseExp, RejectsBadPhases) {
  EXPECT_THROW(PhaseTypeExponential({}), std::invalid_argument);
  EXPECT_THROW(PhaseTypeExponential({{1.0, -1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(PhaseTypeExponential({{0.0, 1.0, 0.0}}), std::invalid_argument);
}

TEST(MultiGamma, PaperEquationForm) {
  // g(alpha, theta, y) = y^(a-1) e^(-y/theta) / (Gamma(a) theta^a).
  MultiStageGamma d({{1.0, 1.5, 25.4, 12.0}});
  const double x = 40.0;
  const double y = x - 12.0;
  const double expected = std::pow(y, 0.5) * std::exp(-y / 25.4) /
                          (std::tgamma(1.5) * std::pow(25.4, 1.5));
  EXPECT_NEAR(d.pdf(x), expected, 1e-12);
  EXPECT_DOUBLE_EQ(d.pdf(11.9), 0.0);
}

TEST(MultiGamma, MeanVarianceClosedForm) {
  MultiStageGamma d({{1.0, 3.0, 4.0, 2.0}});
  EXPECT_DOUBLE_EQ(d.mean(), 2.0 + 12.0);
  EXPECT_DOUBLE_EQ(d.variance(), 3.0 * 16.0);
}

TEST(MultiGamma, CdfViaIncompleteGamma) {
  MultiStageGamma d({{1.0, 2.0, 5.0, 0.0}});
  // P(2, 2) at x = 10 (y/theta = 2).
  EXPECT_NEAR(d.cdf(10.0), util::regularized_gamma_p(2.0, 2.0), 1e-12);
}

TEST(TabulatedPdf, NormalizesInput) {
  TabulatedPdf d({0.0, 1.0, 2.0}, {0.0, 4.0, 0.0});  // triangle, mass 4 -> 1
  EXPECT_NEAR(d.cdf(2.0), 1.0, 1e-12);
  EXPECT_NEAR(d.cdf(1.0), 0.5, 1e-12);
  EXPECT_NEAR(d.mean(), 1.0, 1e-12);
}

TEST(TabulatedPdf, RejectsBadInput) {
  EXPECT_THROW(TabulatedPdf({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(TabulatedPdf({0.0, 0.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(TabulatedPdf({0.0, 1.0}, {-1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(TabulatedPdf({0.0, 1.0}, {0.0, 0.0}), std::invalid_argument);
}

TEST(TabulatedCdf, RescalesToUnitRange) {
  TabulatedCdf d({0.0, 1.0, 2.0}, {0.2, 0.5, 0.8});  // rescaled to [0,1]
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 1.0);
  EXPECT_NEAR(d.cdf(1.0), 0.5, 1e-12);
}

TEST(Empirical, MatchesDataMoments) {
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  EmpiricalDistribution d(data);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.variance(), 1.25);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 2.5);
}

TEST(CdfTableClass, RoundTripsSerialization) {
  ExponentialDistribution d(100.0);
  const CdfTable table = build_cdf_table(d, 64);
  const CdfTable parsed = CdfTable::parse(table.serialize());
  ASSERT_EQ(parsed.size(), table.size());
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(parsed.quantile(p), table.quantile(p), 1e-9);
  }
}

TEST(CdfTableClass, QuantileAccuracyImprovesWithResolution) {
  ExponentialDistribution d(100.0);
  const CdfTable coarse = build_cdf_table(d, 8);
  const CdfTable fine = build_cdf_table(d, 1024);
  double coarse_err = 0.0, fine_err = 0.0;
  for (double p = 0.05; p < 0.95; p += 0.05) {
    coarse_err += std::fabs(coarse.quantile(p) - d.quantile(p));
    fine_err += std::fabs(fine.quantile(p) - d.quantile(p));
  }
  EXPECT_LT(fine_err, coarse_err);
}

// ---------------------------------------------------------------------------
// Alias-method fast path (DESIGN.md "CDF tables"): the O(1) Walker/Vose path
// and the O(log n) binary-search path sample the same piecewise-linear CDF,
// and each is deterministic per (seed, stream id).
// ---------------------------------------------------------------------------

TEST(CdfTableAlias, BothPathsPassChiSquaredAgainstTableCdf) {
  ExponentialDistribution d(100.0);
  const CdfTable table = build_cdf_table(d, 256);
  constexpr int kBins = 20;
  constexpr int kSamples = 50000;
  // Equal-probability bins of the table's own (exact) CDF.
  std::vector<double> edges;
  for (int b = 1; b < kBins; ++b) {
    edges.push_back(table.quantile(static_cast<double>(b) / kBins));
  }
  for (const bool use_alias : {true, false}) {
    util::RngStream rng(777, use_alias ? "alias" : "binary");
    std::vector<double> counts(kBins, 0.0);
    for (int i = 0; i < kSamples; ++i) {
      const double v = use_alias ? table.sample(rng) : table.sample_binary(rng);
      const auto bin = std::upper_bound(edges.begin(), edges.end(), v) - edges.begin();
      counts[static_cast<std::size_t>(bin)] += 1.0;
    }
    const double expected = static_cast<double>(kSamples) / kBins;
    double chi2 = 0.0;
    for (double c : counts) chi2 += (c - expected) * (c - expected) / expected;
    // 99.9th percentile of chi^2 with 19 dof is ~43.8.
    EXPECT_LT(chi2, 43.8) << (use_alias ? "alias path" : "binary path");
  }
}

TEST(CdfTableAlias, BothPathsPassKsAgainstAnalyticCdf) {
  ExponentialDistribution d(100.0);
  const CdfTable table = build_cdf_table(d, 1024);
  constexpr int kSamples = 50000;
  for (const bool use_alias : {true, false}) {
    util::RngStream rng(4242, use_alias ? "ks-alias" : "ks-binary");
    std::vector<double> draws;
    draws.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) {
      draws.push_back(use_alias ? table.sample(rng) : table.sample_binary(rng));
    }
    std::sort(draws.begin(), draws.end());
    double D = 0.0;
    const double n = static_cast<double>(draws.size());
    for (std::size_t i = 0; i < draws.size(); ++i) {
      const double F = d.cdf(draws[i]);
      D = std::max(D, std::max(F - static_cast<double>(i) / n,
                               static_cast<double>(i + 1) / n - F));
    }
    // KS critical value at alpha = 0.001 is ~1.95/sqrt(n) ~= 0.0087; leave
    // headroom for the 1024-knot discretisation of the analytic CDF.
    EXPECT_LT(D, 0.012) << (use_alias ? "alias path" : "binary path");
  }
}

TEST(CdfTableAlias, DeterministicPerSeedAndStreamOnBothPaths) {
  ExponentialDistribution d(50.0);
  const CdfTable table = build_cdf_table(d, 64);
  for (const bool use_alias : {true, false}) {
    util::RngStream a(123, "det");
    util::RngStream b(123, "det");
    for (int i = 0; i < 1000; ++i) {
      const double va = use_alias ? table.sample(a) : table.sample_binary(a);
      const double vb = use_alias ? table.sample(b) : table.sample_binary(b);
      ASSERT_DOUBLE_EQ(va, vb) << (use_alias ? "alias path" : "binary path");
    }
  }
  // Distinct stream ids must produce distinct sequences.
  util::RngStream a(123, "stream-1");
  util::RngStream b(123, "stream-2");
  int collisions = 0;
  for (int i = 0; i < 200; ++i) {
    if (table.sample(a) == table.sample(b)) ++collisions;
  }
  EXPECT_LT(collisions, 5);
}

// ---------------------------------------------------------------------------
// Batched sampling: every sample_n override must reproduce the scalar draw
// sequence bit-for-bit (the contract in distribution.h that lets the USIM's
// draw buffers keep digests identical at draw_batch = 1, and keeps batch
// sizes a pure performance knob elsewhere).
// ---------------------------------------------------------------------------

// Templated so it covers CdfTable too (same sample/sample_n surface without
// the Distribution base).
template <typename Sampler>
void expect_sample_n_matches_scalar(const Sampler& d, const char* label) {
  util::RngStream scalar_rng(9001, "sample-n");
  util::RngStream batch_rng(9001, "sample-n");
  // Mixed chunk sizes, together far past RngStream's 128-double uniform
  // block, so refill boundaries land mid-chunk on the batched stream.
  const std::size_t chunks[] = {1, 3, 128, 7, 200, 64, 129, 1, 500};
  std::vector<double> batch;
  for (const std::size_t n : chunks) {
    batch.resize(n);
    d.sample_n(batch_rng, batch.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(d.sample(scalar_rng), batch[i])
          << label << ": chunk of " << n << ", element " << i;
    }
  }
  // Both streams must also be left in the same state (no draws skipped or
  // buffered inside the distribution).
  EXPECT_EQ(scalar_rng.uniform01(), batch_rng.uniform01()) << label << ": stream state";
}

TEST(SampleN, CdfTableMatchesScalarBitForBit) {
  ExponentialDistribution d(100.0);
  expect_sample_n_matches_scalar(build_cdf_table(d, 256), "cdf_table");
}

TEST(SampleN, PhaseExponentialMatchesScalarBitForBit) {
  expect_sample_n_matches_scalar(PhaseTypeExponential::paper_example_c(), "phase_exp");
}

TEST(SampleN, MultiStageGammaMatchesScalarBitForBit) {
  expect_sample_n_matches_scalar(MultiStageGamma::paper_example_c(), "multistage_gamma");
}

TEST(SampleN, DefaultScalarLoopMatchesScalarBitForBit) {
  // A family without an override exercises Distribution::sample_n's default.
  expect_sample_n_matches_scalar(ExponentialDistribution(50.0, 10.0), "exponential");
}

TEST(CdfTableAlias, BatchPathPassesChiSquaredAgainstTableCdf) {
  // The statistical-identity check of BothPathsPassChiSquaredAgainstTableCdf,
  // pointed at the branch-free batched alias resolve.
  ExponentialDistribution d(100.0);
  const CdfTable table = build_cdf_table(d, 256);
  constexpr int kBins = 20;
  constexpr int kSamples = 50000;
  std::vector<double> edges;
  for (int b = 1; b < kBins; ++b) {
    edges.push_back(table.quantile(static_cast<double>(b) / kBins));
  }
  util::RngStream rng(777, "alias-batch");
  std::vector<double> draws(kSamples);
  table.sample_n(rng, draws.data(), draws.size());
  std::vector<double> counts(kBins, 0.0);
  for (const double v : draws) {
    const auto bin = std::upper_bound(edges.begin(), edges.end(), v) - edges.begin();
    counts[static_cast<std::size_t>(bin)] += 1.0;
  }
  const double expected = static_cast<double>(kSamples) / kBins;
  double chi2 = 0.0;
  for (double c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 99.9th percentile of chi^2 with 19 dof is ~43.8.
  EXPECT_LT(chi2, 43.8);
}

TEST(CdfTableClass, RejectsDegenerateTables) {
  EXPECT_THROW(CdfTable({0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(CdfTable({0.0, 1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(CdfTable({1.0, 0.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(build_cdf_table(ExponentialDistribution(10.0), 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fitting.
// ---------------------------------------------------------------------------

TEST(Kmeans, SeparatesWellSeparatedClusters) {
  std::vector<double> data;
  for (int i = 0; i < 50; ++i) data.push_back(1.0 + 0.01 * i);
  for (int i = 0; i < 50; ++i) data.push_back(100.0 + 0.01 * i);
  const Clustering c = kmeans_1d(data, 2);
  ASSERT_EQ(c.centroids.size(), 2u);
  EXPECT_NEAR(c.centroids[0], 1.25, 0.3);
  EXPECT_NEAR(c.centroids[1], 100.25, 0.3);
  EXPECT_EQ(c.groups[0].size(), 50u);
  EXPECT_EQ(c.groups[1].size(), 50u);
}

TEST(Kmeans, ClampsK) {
  const Clustering c = kmeans_1d({1.0, 2.0}, 10);
  EXPECT_LE(c.centroids.size(), 2u);
}

TEST(Fitting, ExponentialMomentMatch) {
  auto rng = test_rng();
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.exponential(42.0));
  const auto fit = fit_exponential(data);
  EXPECT_NEAR(fit.mean(), 42.0, 2.0);
}

TEST(Fitting, PhaseExponentialRecoversTwoSeparatedPhases) {
  auto rng = test_rng();
  std::vector<double> data;
  for (int i = 0; i < 4000; ++i) data.push_back(rng.exponential(5.0));
  for (int i = 0; i < 4000; ++i) data.push_back(200.0 + rng.exponential(10.0));
  const auto fit = fit_phase_exponential(data, 2);
  ASSERT_EQ(fit.phases().size(), 2u);
  EXPECT_NEAR(fit.phases()[0].weight, 0.5, 0.05);
  EXPECT_NEAR(fit.mean(), (5.0 + 210.0) / 2.0, 6.0);
}

TEST(Fitting, MultistageGammaMatchesMoments) {
  auto rng = test_rng();
  std::vector<double> data;
  for (int i = 0; i < 8000; ++i) data.push_back(rng.gamma(3.0, 7.0));
  const auto fit = fit_multistage_gamma(data, 1);
  EXPECT_NEAR(fit.mean(), 21.0, 1.5);
  EXPECT_NEAR(fit.stddev(), std::sqrt(3.0) * 7.0, 2.0);
}

TEST(Fitting, BestFitPrefersMixtureForBimodalData) {
  auto rng = test_rng();
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) data.push_back(rng.exponential(5.0));
  for (int i = 0; i < 2000; ++i) data.push_back(300.0 + rng.exponential(20.0));
  const BestFit best = fit_best(data, 2);
  ASSERT_TRUE(best.distribution != nullptr);
  EXPECT_NE(best.family, "exponential") << best.family;
  EXPECT_LT(best.ks_statistic, 0.05);
  // And the winner must beat a single exponential decisively.
  const auto single = fit_exponential(data);
  double single_d = 0.0;
  {
    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    const double n = static_cast<double>(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      single_d = std::max(single_d,
                          std::fabs(single.cdf(sorted[i]) - static_cast<double>(i + 1) / n));
    }
  }
  EXPECT_LT(best.ks_statistic, single_d / 3.0);
}

TEST(Fitting, BestFitHandlesUnimodalData) {
  auto rng = test_rng();
  std::vector<double> data;
  for (int i = 0; i < 3000; ++i) data.push_back(rng.exponential(40.0));
  const BestFit best = fit_best(data, 2);
  EXPECT_LT(best.ks_statistic, 0.03);
  EXPECT_NEAR(best.distribution->mean(), 40.0, 4.0);
}

TEST(Fitting, RejectsEmptyData) {
  EXPECT_THROW(fit_exponential({}), std::invalid_argument);
  EXPECT_THROW(fit_phase_exponential({}, 2), std::invalid_argument);
  EXPECT_THROW(fit_multistage_gamma({}, 2), std::invalid_argument);
  EXPECT_THROW(kmeans_1d({}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace wlgen::dist
