// Property-based and failure-injection tests: randomised sweeps checking
// invariants rather than specific values.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fs/filesystem.h"
#include "fsmodel/lru_cache.h"
#include "fsmodel/nfs_model.h"
#include "util/rng.h"

namespace wlgen {
namespace {

// ---------------------------------------------------------------------------
// LRU cache fuzz: compare against a trivially correct reference.
// ---------------------------------------------------------------------------

class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  bool access(std::uint64_t key) {
    const auto it = std::find(order_.begin(), order_.end(), key);
    if (it == order_.end()) return false;
    order_.erase(it);
    order_.push_front(key);
    return true;
  }
  void insert(std::uint64_t key) {
    const auto it = std::find(order_.begin(), order_.end(), key);
    if (it != order_.end()) order_.erase(it);
    order_.push_front(key);
    if (order_.size() > capacity_) order_.pop_back();
  }
  void erase(std::uint64_t key) {
    const auto it = std::find(order_.begin(), order_.end(), key);
    if (it != order_.end()) order_.erase(it);
  }
  bool contains(std::uint64_t key) const {
    return std::find(order_.begin(), order_.end(), key) != order_.end();
  }
  std::size_t size() const { return order_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
};

class LruFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruFuzz, MatchesReferenceImplementation) {
  const std::size_t capacity = 1 + GetParam() % 13;
  fsmodel::LruCache cache(capacity);
  ReferenceLru reference(capacity);
  util::RngStream rng(GetParam(), "lru-fuzz");
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = static_cast<std::uint64_t>(rng.uniform_int(0, 25));
    switch (rng.uniform_int(0, 3)) {
      case 0:
        EXPECT_EQ(cache.access(key), reference.access(key)) << "step " << step;
        break;
      case 1:
        cache.insert(key);
        reference.insert(key);
        break;
      case 2:
        cache.erase(key);
        reference.erase(key);
        break;
      default:
        EXPECT_EQ(cache.contains(key), reference.contains(key)) << "step " << step;
        break;
    }
    EXPECT_EQ(cache.size(), reference.size()) << "step " << step;
    EXPECT_LE(cache.size(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruFuzz, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// File-system fuzz against a size-tracking reference model.
// ---------------------------------------------------------------------------

class FsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsFuzz, SizesMatchReferenceModel) {
  fs::SimulatedFileSystem fsys;
  std::map<std::string, std::uint64_t> reference_sizes;
  std::map<std::string, fs::Fd> open_fds;
  util::RngStream rng(GetParam(), "fs-fuzz");

  for (int step = 0; step < 3000; ++step) {
    const std::string path = "/f" + std::to_string(rng.uniform_int(0, 9));
    switch (rng.uniform_int(0, 5)) {
      case 0: {  // creat (truncates)
        if (open_fds.count(path)) break;  // keep one fd per path for simplicity
        const auto fd = fsys.creat(path);
        ASSERT_TRUE(fd.ok());
        open_fds[path] = fd.value();
        reference_sizes[path] = 0;
        break;
      }
      case 1: {  // write at a random offset
        const auto it = open_fds.find(path);
        if (it == open_fds.end()) break;
        const std::uint64_t offset = static_cast<std::uint64_t>(rng.uniform_int(0, 5000));
        const std::uint64_t count = static_cast<std::uint64_t>(rng.uniform_int(1, 2000));
        fsys.lseek(it->second, static_cast<std::int64_t>(offset), fs::Seek::set);
        ASSERT_TRUE(fsys.write(it->second, count).ok());
        reference_sizes[path] = std::max(reference_sizes[path], offset + count);
        break;
      }
      case 2: {  // read never changes size
        const auto it = open_fds.find(path);
        if (it == open_fds.end()) break;
        fsys.lseek(it->second, 0, fs::Seek::set);
        const auto got = fsys.read(it->second, 10000);
        // creat() descriptors are write-only; both outcomes are legal, but a
        // successful read must return exactly the file size.
        if (got.ok()) {
          EXPECT_EQ(got.value(), reference_sizes[path]);
        }
        break;
      }
      case 3: {  // close
        const auto it = open_fds.find(path);
        if (it == open_fds.end()) break;
        EXPECT_EQ(fsys.close(it->second), fs::FsStatus::ok);
        open_fds.erase(it);
        break;
      }
      case 4: {  // unlink (closing first keeps this reference model simple;
                 // unlink-while-open has its own dedicated test in fs_test)
        const auto it = open_fds.find(path);
        if (it != open_fds.end()) {
          fsys.close(it->second);
          open_fds.erase(it);
        }
        const bool existed = reference_sizes.count(path) != 0;
        const fs::FsStatus status = fsys.unlink(path);
        EXPECT_EQ(status == fs::FsStatus::ok, existed);
        if (existed) reference_sizes.erase(path);
        break;
      }
      default: {  // stat agrees with the reference
        const auto st = fsys.stat(path);
        const auto it = reference_sizes.find(path);
        EXPECT_EQ(st.ok(), it != reference_sizes.end());
        if (st.ok() && it != reference_sizes.end()) {
          EXPECT_EQ(st.value().size, it->second);
        }
        break;
      }
    }
  }
  // Total accounting: bytes_in_use covers linked files plus open-but-unlinked
  // inodes; after closing everything, it equals the sum of linked sizes.
  for (const auto& [path, fd] : open_fds) fsys.close(fd);
  std::uint64_t expected_total = 0;
  for (const auto& [path, size] : reference_sizes) expected_total += size;
  EXPECT_EQ(fsys.bytes_in_use(), expected_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsFuzz, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// USIM under model parameter sweeps: structural invariants hold everywhere.
// ---------------------------------------------------------------------------

struct UsimSweepCase {
  std::string name;
  bool async_writes;
  std::size_t client_cache_blocks;
  std::uint64_t block_size;
};

class UsimSweep : public ::testing::TestWithParam<UsimSweepCase> {};

TEST_P(UsimSweep, InvariantsHoldAcrossModelConfigs) {
  const UsimSweepCase& param = GetParam();
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsParams params;
  params.async_writes = param.async_writes;
  params.client_cache_blocks = param.client_cache_blocks;
  params.block_size = param.block_size;
  fsmodel::NfsModel nfs(simulation, params);
  core::FscConfig fsc_config;
  fsc_config.num_users = 2;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig config;
  config.num_users = 2;
  config.sessions_per_user = 3;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, core::default_population(), config);
  usim.run();

  EXPECT_EQ(usim.sessions_completed(), 6u);
  EXPECT_EQ(usim.log().size(), usim.total_ops());
  EXPECT_EQ(fsys.open_descriptor_count(), 0u);
  for (const auto& r : usim.log().records()) {
    EXPECT_GE(r.response_us, 0.0);
    EXPECT_LE(r.actual_bytes, r.requested_bytes + 1);
  }
  const core::UsageAnalyzer analyzer(usim.log());
  EXPECT_GT(analyzer.response_per_byte_us(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, UsimSweep,
    ::testing::Values(UsimSweepCase{"default", true, 384, 8192},
                      UsimSweepCase{"sync_writes", false, 384, 8192},
                      UsimSweepCase{"tiny_cache", true, 4, 8192},
                      UsimSweepCase{"small_blocks", true, 384, 1024},
                      UsimSweepCase{"big_blocks_sync", false, 64, 32768}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Failure injection.
// ---------------------------------------------------------------------------

TEST(FailureInjection, UsimSurvivesFullDisk) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem::Options fs_options;
  fs_options.capacity_bytes = 2 * 1024 * 1024;  // 2 MiB: fills mid-run
  fs::SimulatedFileSystem fsys(fs_options);
  fsmodel::NfsModel nfs(simulation);
  core::FscConfig fsc_config;
  fsc_config.files_per_user = 24;  // small enough for the FSC itself to fit
  fsc_config.system_files = 48;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig config;
  config.sessions_per_user = 10;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, core::default_population(), config);
  // The run must complete: ENOSPC writes stop file growth but never wedge a
  // session.
  usim.run();
  EXPECT_EQ(usim.sessions_completed(), 10u);
  EXPECT_EQ(fsys.open_descriptor_count(), 0u);
  EXPECT_LE(fsys.bytes_in_use(), fs_options.capacity_bytes);
}

TEST(FailureInjection, UsimSurvivesDescriptorStarvation) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem::Options fs_options;
  fs_options.max_open_files = 6;  // far below a session's working set
  fs::SimulatedFileSystem fsys(fs_options);
  fsmodel::NfsModel nfs(simulation);
  core::FscConfig fsc_config;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig config;
  config.sessions_per_user = 5;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, core::default_population(), config);
  usim.run();
  EXPECT_EQ(usim.sessions_completed(), 5u);
  EXPECT_EQ(fsys.open_descriptor_count(), 0u);
}

TEST(FailureInjection, FscReportsImpossibleConfiguration) {
  fs::SimulatedFileSystem::Options fs_options;
  fs_options.capacity_bytes = 10 * 1024;  // way too small for the FSC build
  fs::SimulatedFileSystem fsys(fs_options);
  core::FscConfig config;
  config.files_per_user = 200;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), config);
  EXPECT_THROW(fsc.create(), std::runtime_error);
}

}  // namespace
}  // namespace wlgen
