// Unit tests for src/util: RNG streams, numeric routines, plotting, tables,
// string helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "util/args.h"
#include "util/ascii_plot.h"
#include "util/config.h"
#include "util/json.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/svg.h"
#include "util/table.h"

namespace wlgen::util {
namespace {

TEST(RngStream, SameSeedSameSequence) {
  RngStream a(7, 1);
  RngStream b(7, 1);
  // Run well past RngStream::kBlock so several batched refills are covered.
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RngStream, BatchedUniformsStayInUnitIntervalAcrossRefills) {
  RngStream rng(3, 0);
  for (std::size_t i = 0; i < 5 * RngStream::kBlock; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, DirectEngineDrawsInterleaveDeterministically) {
  // Mixed batched (uniform01) and direct (engine-backed) draws must be a
  // pure function of the call sequence: two identical streams stay in
  // lockstep through both kinds of draw, including across block refills.
  RngStream a(11, 4);
  RngStream b(11, 4);
  for (std::size_t i = 0; i < 3 * RngStream::kBlock; ++i) {
    if (i % 7 == 3) {
      EXPECT_DOUBLE_EQ(a.exponential(10.0), b.exponential(10.0));
    } else if (i % 7 == 5) {
      EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    } else {
      EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
    }
  }
}

TEST(RngStream, ForkDoesNotPerturbParentSequence) {
  RngStream forked(7, 1);
  RngStream straight(7, 1);
  for (int i = 0; i < 10; ++i) forked.uniform01();
  for (int i = 0; i < 10; ++i) straight.uniform01();
  auto child = forked.fork("child");
  child.uniform01();
  for (int i = 0; i < 300; ++i) EXPECT_DOUBLE_EQ(forked.uniform01(), straight.uniform01());
}

TEST(RngStream, DifferentStreamsDiffer) {
  RngStream a(7, 1);
  RngStream b(7, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngStream, LabelConstructionIsStable) {
  RngStream a(7, "user/3");
  RngStream b(7, "user/3");
  EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RngStream, ForkIndependence) {
  RngStream root(7, 0);
  RngStream child1 = root.fork("alpha");
  RngStream child2 = root.fork("beta");
  EXPECT_NE(child1.uniform01(), child2.uniform01());
}

TEST(RngStream, UniformRange) {
  RngStream rng(1, 0);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngStream, UniformIntInclusive) {
  RngStream rng(1, 0);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngStream, ExponentialMeanApproximatelyCorrect) {
  RngStream rng(99, 0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(RngStream, GammaMeanApproximatelyCorrect) {
  RngStream rng(99, 0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(2.0, 10.0);
  EXPECT_NEAR(sum / n, 20.0, 1.0);
}

TEST(RngStream, CategoricalRespectsWeights) {
  RngStream rng(5, 0);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.categorical(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.03);
}

TEST(RngStream, CategoricalRejectsBadInput) {
  RngStream rng(5, 0);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(RngStream, BernoulliEdges) {
  RngStream rng(5, 0);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Numeric, SimpsonIntegratesPolynomialExactly) {
  // Simpson is exact for cubics.
  const auto f = [](double x) { return x * x * x - 2.0 * x + 1.0; };
  const double got = simpson(f, 0.0, 2.0, 8);
  const double expected = 4.0 - 4.0 + 2.0;  // x^4/4 - x^2 + x over [0,2]
  EXPECT_NEAR(got, expected, 1e-12);
}

TEST(Numeric, SimpsonHandlesOddSubintervalCount) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(simpson(f, 0.0, 1.0, 3), 0.5, 1e-12);
}

TEST(Numeric, SimpsonEmptyInterval) {
  EXPECT_DOUBLE_EQ(simpson([](double) { return 1.0; }, 2.0, 2.0, 10), 0.0);
}

TEST(Numeric, SimpsonTabulatedMatchesFunctional) {
  std::vector<double> values;
  const std::size_t n = 101;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    values.push_back(std::exp(-x));
  }
  const double got = simpson_tabulated(values, 0.01);
  EXPECT_NEAR(got, 1.0 - std::exp(-1.0), 1e-8);
}

TEST(Numeric, SimpsonTabulatedEvenPointCount) {
  // 4 points: Simpson over 3 + trapezoid correction for the tail interval.
  std::vector<double> values = {0.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(simpson_tabulated(values, 1.0), 4.5, 1e-12);
}

TEST(Numeric, RegularizedGammaPKnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_p(0.5, 2.0), std::erf(std::sqrt(2.0)), 1e-10);
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
}

TEST(Numeric, RegularizedGammaPMonotone) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.5) {
    const double cur = regularized_gamma_p(2.5, x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(Numeric, InterpLinearInterpolatesAndClamps) {
  std::vector<double> xs = {0.0, 1.0, 2.0};
  std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 9.0), 40.0);
}

TEST(Numeric, InterpInverseRoundTrips) {
  std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys = {0.0, 0.2, 0.7, 1.0};
  for (double y : {0.0, 0.1, 0.2, 0.5, 0.9, 1.0}) {
    const double x = interp_inverse(xs, ys, y);
    EXPECT_NEAR(interp_linear(xs, ys, x), y, 1e-12);
  }
}

TEST(Numeric, LinspaceEndpoints) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
}

TEST(AsciiPlot, CurveContainsMarks) {
  const auto plot = ascii_curve({0, 1, 2}, {0, 1, 0});
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, HistogramBarsScale) {
  const auto plot = ascii_histogram({0, 1, 2}, {1, 10});
  EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(AsciiPlot, RejectsMismatchedInput) {
  EXPECT_THROW(ascii_curve({0, 1}, {0}), std::invalid_argument);
  EXPECT_THROW(ascii_histogram({0, 1}, {1, 2}), std::invalid_argument);
}

TEST(Svg, PlotProducesDocument) {
  SvgSeries s;
  s.xs = {0, 1, 2};
  s.ys = {0, 1, 4};
  s.label = "test";
  const std::string svg = svg_plot({s});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("test"), std::string::npos);
}

TEST(Table, RendersAlignedRows) {
  TextTable t({"a", "long_header"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, MeanStdFormat) {
  EXPECT_EQ(TextTable::mean_std(1.5, 0.25), "1.50(0.25)");
}

TEST(Strings, SplitAndTrim) {
  const auto pieces = split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitWhitespaceDiscardsEmpty) {
  const auto pieces = split_whitespace("  a\t b\nc  ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_double("1.5e3").value(), 1500.0);
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_FALSE(parse_int("4.2").has_value());
}

TEST(Strings, JoinAndLower) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("h", "he"));
}

TEST(Strings, SlugifyCollapsesSeparatorRuns) {
  EXPECT_EQ(slugify("Figure 5.6"), "figure_5_6");
  EXPECT_EQ(slugify("Table 5.1"), "table_5_1");
  EXPECT_EQ(slugify("  Sections 2.1, 5.3 — baselines "), "sections_2_1_5_3_baselines");
  EXPECT_EQ(slugify("already_a_slug"), "already_a_slug");
  EXPECT_EQ(slugify(""), "artifact");
  EXPECT_EQ(slugify("---"), "artifact");
}

TEST(Strings, SlugifyFilenamePreservesExtension) {
  EXPECT_EQ(slugify_filename("Figure 5.6.svg"), "figure_5_6.svg");
  EXPECT_EQ(slugify_filename("Figure 5.6.JSON"), "figure_5_6.json");
  EXPECT_EQ(slugify_filename("EXPERIMENTS.md"), "experiments.md");
  EXPECT_EQ(slugify_filename("no extension here"), "no_extension_here");
}

TEST(Json, DumpAndParseRoundTrip) {
  JsonValue doc = JsonValue::make_object();
  doc.set("name", "fig5_6");
  doc.set("count", 23);
  doc.set("pi", 3.14159265358979);
  doc.set("ok", true);
  doc.set("missing", JsonValue());
  JsonValue xs = JsonValue::make_array();
  for (double v : {1.0, 2.5, -3.0}) xs.push_back(v);
  doc.set("xs", std::move(xs));

  const std::string text = doc.dump();
  const JsonValue back = parse_json(text);
  EXPECT_EQ(back.at("name").as_string(), "fig5_6");
  EXPECT_EQ(back.at("count").as_number(), 23.0);
  EXPECT_DOUBLE_EQ(back.at("pi").as_number(), 3.14159265358979);
  EXPECT_TRUE(back.at("ok").as_bool());
  EXPECT_TRUE(back.at("missing").is_null());
  ASSERT_EQ(back.at("xs").as_array().size(), 3u);
  EXPECT_EQ(back.at("xs").as_array()[1].as_number(), 2.5);
  // Key order survives, so re-dumping is byte-identical.
  EXPECT_EQ(back.dump(), text);
}

TEST(Json, StringEscapesSurviveRoundTrip) {
  JsonValue doc = JsonValue::make_object();
  doc.set("text", "line\n\"quoted\"\tback\\slash");
  const JsonValue back = parse_json(doc.dump());
  EXPECT_EQ(back.at("text").as_string(), "line\n\"quoted\"\tback\\slash");
}

TEST(Json, SurrogatePairsDecodeToOneUtf8CodePoint) {
  // \uD83D\uDE00 is U+1F600; decoding the halves independently would emit
  // invalid UTF-8 (CESU-8) that strict consumers reject.
  const JsonValue v = parse_json("\"\\uD83D\\uDE00\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(parse_json("\"\\uD83D\""), std::runtime_error);     // unpaired high
  EXPECT_THROW(parse_json("\"\\uDE00\""), std::runtime_error);     // lone low
  EXPECT_THROW(parse_json("\"\\uD83D\\u0041\""), std::runtime_error);  // bad pair
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("nope"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
}

TEST(Json, LookupHelpers) {
  JsonValue doc = JsonValue::make_object();
  doc.set("a", 1);
  EXPECT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("b"), nullptr);
  EXPECT_THROW(doc.at("b"), std::runtime_error);
  EXPECT_THROW(doc.at("a").as_string(), std::runtime_error);
}

// --- CLI argument parser ----------------------------------------------------

TEST(Args, PositionalsAndKeyValuePairs) {
  const Args args = Args::parse({"run", "--users", "4", "--model", "nfs", "extra"});
  EXPECT_EQ(args.positional, (std::vector<std::string>{"run", "extra"}));
  EXPECT_EQ(args.get("model", ""), "nfs");
  EXPECT_EQ(args.count("users", 1), 4u);
  EXPECT_EQ(args.count("absent", 9), 9u);
}

TEST(Args, EqualsFormIsAlwaysUnambiguous) {
  const Args args = Args::parse({"--users=6", "--out=dir with spaces", "--scale=0.25"});
  EXPECT_EQ(args.count("users", 1), 6u);
  EXPECT_EQ(args.get("out", ""), "dir with spaces");
  EXPECT_DOUBLE_EQ(args.number("scale", 1.0), 0.25);
}

TEST(Args, BooleanFlagsDoNotSwallowTheNextToken) {
  // The historical bug: `experiments --check fig5_1` ate the positional.
  const Args args = Args::parse({"--check", "fig5_1", "--verbose"}, {"check", "verbose"});
  EXPECT_TRUE(args.boolean("check"));
  EXPECT_TRUE(args.boolean("verbose"));
  EXPECT_EQ(args.positional, (std::vector<std::string>{"fig5_1"}));
  EXPECT_THROW(Args::parse({"--check=yes"}, {"check"}), std::invalid_argument);
}

TEST(Args, TrailingAndValuelessFlagsActAsBooleans) {
  const Args args = Args::parse({"--verify", "--log"});
  EXPECT_TRUE(args.boolean("verify"));
  EXPECT_TRUE(args.boolean("log"));
}

TEST(Args, CountRejectsNegativeFractionalAndMalformedValues) {
  // `--users -1` used to static_cast a negative double to std::size_t (UB).
  EXPECT_THROW(Args::parse({"--users", "-1"}).count("users", 1), std::invalid_argument);
  EXPECT_THROW(Args::parse({"--users=1.5"}).count("users", 1), std::invalid_argument);
  EXPECT_THROW(Args::parse({"--users", "abc"}).count("users", 1), std::invalid_argument);
  EXPECT_THROW(Args::parse({"--users="}).count("users", 1), std::invalid_argument);
  // Out-of-range magnitudes are errors too — never a float-to-integer cast.
  EXPECT_THROW(Args::parse({"--users", "1e20"}).count("users", 1), std::invalid_argument);
  EXPECT_THROW(Args::parse({"--users", "20000000000000000000"}).count("users", 1),
               std::invalid_argument);
  EXPECT_EQ(Args::parse({"--users", "0"}).count("users", 1), 0u);
}

TEST(Args, NumberAcceptsNegativesButRejectsGarbage) {
  EXPECT_DOUBLE_EQ(Args::parse({"--markov", "-1"}).number("markov", 0.0), -1.0);
  EXPECT_THROW(Args::parse({"--markov", "x"}).number("markov", 0.0), std::invalid_argument);
}

TEST(Args, RequireKnownNamesTheMisspelledFlag) {
  // `--chek fig5_1` must not silently swallow a token into a key nobody
  // reads — the command's whitelist catches the typo.
  const Args args = Args::parse({"--chek", "fig5_1"});
  EXPECT_THROW(args.require_known({"check", "only"}), std::invalid_argument);
  Args::parse({"--check"}, {"check"}).require_known({"check", "only"});  // must not throw
}

TEST(CommandSpec, DerivesFlagSetsAndHelpFromOneTable) {
  const CommandSpec spec{"demo",
                         "<file>",
                         "a demo command",
                         {{"count", "N", "how many"}, {"fast", "", "skip checks"}}};
  EXPECT_EQ(spec.flag_names(), (std::set<std::string>{"count", "fast", "help"}));
  EXPECT_EQ(spec.boolean_flag_names(), (std::set<std::string>{"fast", "help"}));

  const std::string usage = spec.usage_line("prog");
  EXPECT_NE(usage.find("prog demo <file>"), std::string::npos);
  EXPECT_NE(usage.find("[--count N]"), std::string::npos);
  EXPECT_NE(usage.find("[--fast]"), std::string::npos);

  const std::string help = render_command_help("prog", spec);
  EXPECT_NE(help.find("a demo command"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(CommandSpec, UsageLineWrapsWithAlignedContinuation) {
  CommandSpec spec{"cmd", "", "wide", {}};
  for (int i = 0; i < 12; ++i) {
    spec.flags.push_back({"flag-number-" + std::to_string(i), "VALUE", "x"});
  }
  const std::string usage = spec.usage_line("prog", 60);
  for (const auto& line : split(usage, '\n')) {
    EXPECT_LE(line.size(), 60u) << line;
  }
  EXPECT_NE(usage.find('\n'), std::string::npos);  // actually wrapped
}

// --- util::Config (the scenario file parser) --------------------------------

TEST(Config, ParsesSectionsKeysCommentsAndQuotes) {
  const Config config = Config::parse_text(
      "# full-line comment\n"
      "; also a comment\n"
      "top = 1\n"
      "[alpha]\n"
      "name = bare value with spaces   # trailing comment\n"
      "quoted = \" kept; spaces # and marks \"  ; comment after quote\n"
      "escaped = \"a\\\"b\\\\c\\n\"\n"
      "dotted.key = 2.5\n"
      "[beta]  # section trailing comment\n"
      "flag = on\n"
      "list = a, b , ,c\n");
  EXPECT_TRUE(config.has("top"));
  EXPECT_EQ(config.get_int("top", 0), 1);
  EXPECT_EQ(config.get_string("alpha.name"), "bare value with spaces");
  EXPECT_EQ(config.get_string("alpha.quoted"), " kept; spaces # and marks ");
  EXPECT_EQ(config.get_string("alpha.escaped"), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(config.get_double("alpha.dotted.key", 0.0), 2.5);
  EXPECT_TRUE(config.get_bool("beta.flag", false));
  EXPECT_EQ(config.get_list("beta.list"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(config.keys().front(), "top");  // file order preserved
  EXPECT_EQ(config.keys_with_prefix("alpha.").size(), 4u);
  EXPECT_EQ(config.get_string("absent", "fallback"), "fallback");
}

TEST(Config, TypedGetterErrorsCarryOriginAndLineNumber) {
  const Config config = Config::parse_text(
      "[a]\n"
      "count = many\n"
      "level = high\n"
      "flag = maybe\n",
      "test.scn");
  EXPECT_EQ(config.line_of("a.count"), 2);
  for (const auto& probe : std::vector<std::function<void()>>{
           [&] { (void)config.get_int("a.count", 0); },
           [&] { (void)config.get_size("a.count", 0); },
           [&] { (void)config.get_double("a.level", 0.0); },
           [&] { (void)config.get_bool("a.flag", false); }}) {
    try {
      probe();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("test.scn:"), std::string::npos) << e.what();
    }
  }
  // Negative counts are rejected by get_size but fine for get_int.
  const Config negative = Config::parse_text("n = -3\n");
  EXPECT_EQ(negative.get_int("n", 0), -3);
  EXPECT_THROW((void)negative.get_size("n", 0), std::invalid_argument);
}

TEST(Config, ParseErrorsNameTheLine) {
  for (const char* bad : {
           "key value\n",                 // no '='
           "[section\n",                  // unterminated header
           "a = \"unterminated\n",        // unterminated quote
           "a = \"x\" trailing\n",        // text after closing quote
           "a = \"bad \\q escape\"\n",    // unknown escape
           "a!b = 1\n",                   // invalid key
           "a = 1\na = 2\n",              // duplicate key
       }) {
    try {
      (void)Config::parse_text(bad, "bad.cfg");
      FAIL() << "expected parse failure for: " << bad;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("bad.cfg:"), std::string::npos) << e.what();
    }
  }
  // The duplicate-key error names the first definition's line too.
  try {
    (void)Config::parse_text("a = 1\na = 2\n", "dup.cfg");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos) << e.what();
  }
}

TEST(Config, RequireKnownFlagsTheTypoWithItsLine) {
  const Config config = Config::parse_text(
      "[scenario]\nmode = contended\n[workload]\nuserz = 3\n[model]\nnfs.x = 1\n",
      "typo.scn");
  config.require_known({"scenario.mode", "workload.userz"}, {"model."});  // must not throw
  try {
    config.require_known({"scenario.mode"}, {"model."});
    FAIL() << "expected unknown-key failure";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("typo.scn:4"), std::string::npos) << message;
    EXPECT_NE(message.find("workload.userz"), std::string::npos) << message;
  }
}

TEST(Config, MissingFileErrorNamesThePath) {
  try {
    (void)Config::parse_file("/nonexistent/nowhere.scn");
    FAIL() << "expected missing-file failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nowhere.scn"), std::string::npos);
  }
}

}  // namespace
}  // namespace wlgen::util
