// Unit tests for src/sim: event ordering, clock semantics, FCFS resources
// with utilisation accounting, and stage-chain execution.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <random>
#include <utility>
#include <vector>

#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stages.h"

// Global allocation counter: lets the event-core tests assert that the
// arena + small-buffer-callback design really schedules without touching
// the heap (DESIGN.md "Event core").  The operators below intentionally
// pair std::malloc with std::free; GCC's -Wmismatched-new-delete cannot see
// through the override.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// The nothrow forms must be replaced too: std::stable_sort's temporary
// buffer allocates via ::operator new(n, std::nothrow) and frees via the
// sized ::operator delete above — replacing only the throwing forms pairs
// the library default's allocation with this file's std::free (caught by
// ASan as an alloc-dealloc mismatch).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wlgen::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30.0, [&] { order.push_back(3); });
  sim.schedule(10.0, [&] { order.push_back(1); });
  sim.schedule(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, NestedSchedulingAdvancesClock) {
  Simulation sim;
  double inner_time = -1.0;
  sim.schedule(10.0, [&] {
    sim.schedule(5.0, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(inner_time, 15.0);
}

TEST(Simulation, RejectsInvalidScheduling) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(1.0, nullptr), std::invalid_argument);
  // An empty std::function must be rejected at schedule time, not crash
  // with bad_function_call at dispatch time.
  std::function<void()> empty_fn;
  EXPECT_THROW(sim.schedule(1.0, empty_fn), std::invalid_argument);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10.0, [&] { ++fired; });
  sim.schedule(20.0, [&] { ++fired; });
  sim.run_until(15.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

// Regression: run_until must advance the clock even when nothing is
// pending — callers use it to model idle wall-clock periods.
TEST(Simulation, RunUntilOnEmptyQueueStillAdvancesClock) {
  Simulation sim;
  sim.run_until(25.0);
  EXPECT_DOUBLE_EQ(sim.now(), 25.0);
  EXPECT_EQ(sim.events_processed(), 0u);
  sim.run_until(25.0);  // idempotent at the boundary
  EXPECT_DOUBLE_EQ(sim.now(), 25.0);
  sim.run_until(40.0);
  EXPECT_DOUBLE_EQ(sim.now(), 40.0);
  EXPECT_THROW(sim.run_until(10.0), std::invalid_argument);
}

// reset() rewinds the clock and discards pending work: the sharded runner
// reuses one Simulation per worker across many independent user timelines.
TEST(Simulation, ResetRewindsClockAndDropsPendingEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule(5.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(6.0);
  EXPECT_EQ(fired, 1);
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
  sim.run();              // nothing pending: a no-op
  EXPECT_EQ(fired, 1);    // the discarded 10.0 event never fires

  // A fresh timeline on the recycled arena behaves like a new Simulation,
  // FIFO tie-break included.
  std::vector<int> order;
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

// Property test of the SoA pending set: for a randomized schedule with many
// deliberate timestamp collisions, dispatch order must equal a stable sort
// of the requests by time — stability being exactly the FIFO tie-break.
// Guards the parallel key/payload arrays against drifting out of sync in
// any sift path.
TEST(Simulation, RandomizedScheduleDispatchesInStableSortedOrder) {
  std::mt19937 gen(20260807);
  // Few distinct times over many events forces long runs of ties.
  std::uniform_int_distribution<int> coarse_time(0, 19);
  Simulation sim;
  std::vector<int> order;
  std::vector<std::pair<double, int>> requests;  // (when, id), scheduling order
  constexpr int kEvents = 2000;
  for (int i = 0; i < kEvents; ++i) {
    const double when = static_cast<double>(coarse_time(gen));
    requests.emplace_back(when, i);
    sim.schedule_at(when, [&order, i] { order.push_back(i); });
  }
  sim.run();
  std::stable_sort(requests.begin(), requests.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(order.size(), requests.size());
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], requests[static_cast<std::size_t>(i)].second)
        << "dispatch position " << i;
  }
}

// reset() between two identical randomized timelines: the warm arena and
// recycled heap storage must replay the second timeline identically to the
// first (the sharded runner's per-worker reuse contract, at scale).
TEST(Simulation, ResetReplaysIdenticalTimelineOnWarmStorage) {
  Simulation sim;
  std::vector<int> first_run;
  std::vector<int> second_run;
  auto drive = [&sim](std::vector<int>& order) {
    std::mt19937 gen(99);
    std::uniform_int_distribution<int> coarse_time(0, 9);
    for (int i = 0; i < 500; ++i) {
      sim.schedule_at(static_cast<double>(coarse_time(gen)), [&order, i] { order.push_back(i); });
    }
    sim.run();
  };
  drive(first_run);
  sim.reset();
  EXPECT_EQ(sim.pending(), 0u);
  drive(second_run);
  EXPECT_EQ(first_run, second_run);
}

// Regression: the FIFO tie-break must survive heap restructuring — ties
// scheduled from inside other events (exercising sift-up/sift-down paths)
// still fire in scheduling order.
TEST(Simulation, FifoTieBreakSurvivesInterleavedScheduling) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule(static_cast<double>(i % 5), [&sim, &order, i] {
      sim.schedule_at(100.0, [&order, i] { order.push_back(i); });
    });
  }
  sim.run();
  // Outer events fire grouped by time (i%5), FIFO within a group; the inner
  // ties at t=100 must replay exactly that scheduling order.
  std::vector<int> expected;
  for (int r = 0; r < 5; ++r) {
    for (int i = r; i < 50; i += 5) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

// The point of the event-pool + small-buffer-callback design: once the
// arena is warm, scheduling and running events with small captures performs
// zero heap allocations.
TEST(Simulation, SmallCaptureEventsAllocateNothingAfterWarmup) {
  Simulation sim;
  const int n = 1000;
  int fired = 0;
  for (int i = 0; i < n; ++i) sim.schedule(static_cast<double>(i), [&fired] { ++fired; });
  sim.run();  // warm-up grows the heap/arena vectors to steady state
  ASSERT_EQ(fired, n);

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) sim.schedule(static_cast<double>(i), [&fired] { ++fired; });
  sim.run();
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(fired, 2 * n);
}

// Captures above EventFn::kInlineCapacity take the heap fallback but must
// behave identically.
TEST(Simulation, LargeCaptureEventsStillRunCorrectly) {
  Simulation sim;
  struct Big {
    double payload[16];  // 128 bytes, well past the inline buffer
  };
  Big big{};
  big.payload[0] = 1.0;
  big.payload[15] = 2.0;
  double seen = 0.0;
  sim.schedule(1.0, [big, &seen] { seen = big.payload[0] + big.payload[15]; });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 3.0);
}

TEST(Simulation, EventBudgetGuardsLivelock) {
  Simulation sim;
  std::function<void()> loop = [&] { sim.schedule(0.0, loop); };
  sim.schedule(0.0, loop);
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(Resource, SingleServerSerializesRequests) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  std::vector<double> completions;
  sim.schedule(0.0, [&] {
    disk.use(10.0, [&] { completions.push_back(sim.now()); });
    disk.use(10.0, [&] { completions.push_back(sim.now()); });
    disk.use(10.0, [&] { completions.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 10.0);
  EXPECT_DOUBLE_EQ(completions[1], 20.0);
  EXPECT_DOUBLE_EQ(completions[2], 30.0);
  EXPECT_EQ(disk.completed(), 3u);
}

TEST(Resource, MultiServerRunsInParallel) {
  Simulation sim;
  Resource cpu(sim, "cpu", 2);
  std::vector<double> completions;
  sim.schedule(0.0, [&] {
    for (int i = 0; i < 4; ++i) {
      cpu.use(10.0, [&] { completions.push_back(sim.now()); });
    }
  });
  sim.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[0], 10.0);
  EXPECT_DOUBLE_EQ(completions[1], 10.0);
  EXPECT_DOUBLE_EQ(completions[2], 20.0);
  EXPECT_DOUBLE_EQ(completions[3], 20.0);
}

TEST(Resource, FcfsOrderPreserved) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  std::vector<int> order;
  sim.schedule(0.0, [&] { disk.use(5.0, [&] { order.push_back(0); }); });
  sim.schedule(1.0, [&] { disk.use(5.0, [&] { order.push_back(1); }); });
  sim.schedule(2.0, [&] { disk.use(5.0, [&] { order.push_back(2); }); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, UtilizationFullWhenSaturated) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  sim.schedule(0.0, [&] {
    for (int i = 0; i < 10; ++i) disk.use(10.0, [] {});
  });
  sim.run();
  EXPECT_NEAR(disk.utilization(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(disk.busy_time(), 100.0);
}

TEST(Resource, UtilizationHalfWhenIdleHalfTheTime) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  sim.schedule(0.0, [&] { disk.use(10.0, [] {}); });
  sim.schedule(20.0, [&] { disk.use(10.0, [] {}); });
  sim.run();  // busy [0,10] and [20,30] over elapsed 30
  EXPECT_NEAR(disk.utilization(), 20.0 / 30.0, 1e-9);
}

TEST(Resource, MeanQueueLengthAccounting) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  sim.schedule(0.0, [&] {
    disk.use(10.0, [] {});
    disk.use(10.0, [] {});  // waits [0,10]
  });
  sim.run();  // queue length 1 for 10 of 20 elapsed
  EXPECT_NEAR(disk.mean_queue_length(), 0.5, 1e-9);
}

TEST(Resource, ResetStatsClearsCounters) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  sim.schedule(0.0, [&] { disk.use(10.0, [] {}); });
  sim.run();
  disk.reset_stats();
  EXPECT_EQ(disk.completed(), 0u);
  EXPECT_DOUBLE_EQ(disk.busy_time(), 0.0);
}

TEST(Resource, RejectsInvalidUse) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  EXPECT_THROW(disk.use(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(disk.use(1.0, nullptr), std::invalid_argument);
  EXPECT_THROW(Resource(sim, "bad", 0), std::invalid_argument);
}

TEST(Stages, DelayChainAccumulates) {
  Simulation sim;
  double elapsed = -1.0;
  StageChain chain = {Stage::make_delay(5.0), Stage::make_delay(7.0)};
  EXPECT_DOUBLE_EQ(chain_service_demand(chain), 12.0);
  execute_chain(sim, chain, [&](SimTime t) { elapsed = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(elapsed, 12.0);
}

TEST(Stages, UseStageIncludesQueueing) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  std::vector<double> elapsed;
  sim.schedule(0.0, [&] {
    execute_chain(sim, {Stage::make_use(disk, 10.0)},
                  [&](SimTime t) { elapsed.push_back(t); });
    execute_chain(sim, {Stage::make_use(disk, 10.0)},
                  [&](SimTime t) { elapsed.push_back(t); });
  });
  sim.run();
  ASSERT_EQ(elapsed.size(), 2u);
  EXPECT_DOUBLE_EQ(elapsed[0], 10.0);  // no wait
  EXPECT_DOUBLE_EQ(elapsed[1], 20.0);  // waited 10 behind the first
}

TEST(Stages, MixedChainOrdering) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  double elapsed = -1.0;
  StageChain chain = {Stage::make_delay(3.0), Stage::make_use(disk, 4.0),
                      Stage::make_delay(2.0)};
  execute_chain(sim, chain, [&](SimTime t) { elapsed = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(elapsed, 9.0);
}

TEST(Stages, EmptyChainCompletesImmediately) {
  Simulation sim;
  double elapsed = -1.0;
  execute_chain(sim, {}, [&](SimTime t) { elapsed = t; });
  EXPECT_DOUBLE_EQ(elapsed, 0.0);  // synchronous: no stages to schedule
}

TEST(Stages, RejectsInvalidStages) {
  Simulation sim;
  EXPECT_THROW(Stage::make_delay(-1.0), std::invalid_argument);
  EXPECT_THROW(execute_chain(sim, {}, nullptr), std::invalid_argument);
}

TEST(Stages, ManyConcurrentChainsOnOneResource) {
  Simulation sim;
  Resource disk(sim, "disk", 1);
  int completed = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    execute_chain(sim, {Stage::make_use(disk, 1.0)}, [&](SimTime) { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, n);
  EXPECT_DOUBLE_EQ(sim.now(), static_cast<double>(n));
}

}  // namespace
}  // namespace wlgen::sim
