// Unit tests for src/core: workload model types, presets (paper Tables
// 5.1/5.2/5.4), the spec DSL (GDS), FSC, usage log round-trip, and the
// extension policies.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/ext.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/spec.h"
#include "core/usage_log.h"
#include "core/workload.h"
#include "dist/basic.h"

namespace wlgen::core {
namespace {

TEST(Workload, CategoryLabelsMatchPaperStyle) {
  const FileCategory c{FileType::regular, FileOwner::notes, UseMode::read_write};
  EXPECT_EQ(c.label(), "REG/NOTES/RD-WRT");
  const FileCategory d{FileType::directory, FileOwner::user, UseMode::read_only};
  EXPECT_EQ(d.label(), "DIR/USER/RDONLY");
}

TEST(Workload, CategoryIndexIsInjective) {
  std::set<std::size_t> seen;
  for (const auto& c : all_categories()) {
    EXPECT_TRUE(seen.insert(c.index()).second) << c.label();
  }
  EXPECT_EQ(seen.size(), 24u);
}

TEST(Workload, PopulationNormalizesFractions) {
  Population p;
  p.groups.push_back({heavy_user(), 2.0});
  p.groups.push_back({light_user(), 6.0});
  p.validate_and_normalize();
  EXPECT_DOUBLE_EQ(p.groups[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(p.groups[1].fraction, 0.75);
  Population empty;
  EXPECT_THROW(empty.validate_and_normalize(), std::invalid_argument);
}

TEST(Workload, LargestRemainderApportionment) {
  // 6 users at 50/50 must split exactly 3 + 3 (the paper's populations).
  Population p = mixed_population(0.5);
  int heavy = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (p.type_for_user(i, 6).name == "heavy") ++heavy;
  }
  EXPECT_EQ(heavy, 3);
  // 5 users at 80/20 -> 4 heavy, 1 light.
  Population q = mixed_population(0.8);
  heavy = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (q.type_for_user(i, 5).name == "heavy") ++heavy;
  }
  EXPECT_EQ(heavy, 4);
}

TEST(Presets, Table51HasNineCategoriesSummingToOne) {
  const auto profiles = di86_file_profiles();
  EXPECT_EQ(profiles.size(), 9u);
  double total = 0.0;
  for (const auto& p : profiles) total += p.fraction_of_files;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Spot values from the paper's table.
  EXPECT_NEAR(profiles[0].size_dist->mean(), 714.0, 1e-9);
  EXPECT_NEAR(profiles[6].size_dist->mean(), 31347.0, 1e-9);
  EXPECT_NEAR(profiles[5].fraction_of_files, 0.382, 1e-9);
}

TEST(Presets, Table52UsageMeansMatchPaper) {
  const auto usage = di86_usage_profiles();
  EXPECT_EQ(usage.size(), 9u);
  // REG/USER/RDONLY row: 1.42 accesses/byte, 2608 B files, 6.0 files, 100%.
  const auto& row = usage[2];
  EXPECT_EQ(row.category.label(), "REG/USER/RDONLY");
  EXPECT_NEAR(row.accesses_per_byte->mean(), 1.42, 1e-9);
  EXPECT_NEAR(row.file_size->mean(), 2608.0, 1e-9);
  EXPECT_NEAR(row.files_per_session->mean(), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(row.prob_accessing_category, 1.0);
}

TEST(Presets, Table54UserTypesThinkTimes) {
  EXPECT_DOUBLE_EQ(extremely_heavy_user().think_time_us->mean(), 0.0);
  EXPECT_DOUBLE_EQ(heavy_user().think_time_us->mean(), 5000.0);
  EXPECT_DOUBLE_EQ(light_user().think_time_us->mean(), 20000.0);
  EXPECT_DOUBLE_EQ(heavy_user().access_size_bytes->mean(), 1024.0);
}

TEST(Presets, AccessSizeOverride) {
  const UserType u = with_access_size_mean(extremely_heavy_user(), 128.0);
  EXPECT_DOUBLE_EQ(u.access_size_bytes->mean(), 128.0);
  EXPECT_DOUBLE_EQ(u.think_time_us->mean(), 0.0);  // rest preserved
}

// ---------------------------------------------------------------------------
// Spec DSL (GDS).
// ---------------------------------------------------------------------------

TEST(Spec, ParsesEveryFamily) {
  EXPECT_NEAR(parse_distribution("constant(5)")->mean(), 5.0, 1e-12);
  EXPECT_NEAR(parse_distribution("uniform(2, 6)")->mean(), 4.0, 1e-12);
  EXPECT_NEAR(parse_distribution("exp(100)")->mean(), 100.0, 1e-12);
  EXPECT_NEAR(parse_distribution("exp(theta=100, s=10)")->mean(), 110.0, 1e-12);
  const auto phase =
      parse_distribution("phase_exp((w=0.4, theta=12.7, s=0), (w=0.6, theta=18.2, s=18))");
  EXPECT_NEAR(phase->mean(), 0.4 * 12.7 + 0.6 * (18.0 + 18.2), 1e-9);
  const auto gamma = parse_distribution("gamma((w=1, alpha=1.5, theta=25.4, s=12))");
  EXPECT_NEAR(gamma->mean(), 12.0 + 1.5 * 25.4, 1e-9);
  EXPECT_NO_THROW(parse_distribution("pdf_table((0,0), (1,2), (2,0))"));
  EXPECT_NO_THROW(parse_distribution("cdf_table((0,0), (1,0.5), (2,1))"));
}

TEST(Spec, WhitespaceAndCaseInsensitive) {
  EXPECT_NO_THROW(parse_distribution("  EXP ( theta = 100 ) "));
  EXPECT_NO_THROW(parse_distribution("Phase_Exp((w=1,theta=5,s=0))"));
}

TEST(Spec, RejectsMalformedInput) {
  EXPECT_THROW(parse_distribution(""), std::invalid_argument);
  EXPECT_THROW(parse_distribution("frobnicate(1)"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("exp()"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("exp(theta=1) trailing"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("uniform(1)"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("pdf_table((0,0,0))"), std::invalid_argument);
}

TEST(Spec, SerializationRoundTrips) {
  const std::vector<std::string> specs = {
      "constant(5)",
      "uniform(2, 6)",
      "exp(theta=100, s=10)",
      "phase_exp((w=0.4, theta=12.7, s=0), (w=0.6, theta=18.2, s=18))",
      "gamma((w=0.7, alpha=1.4, theta=12.4, s=0), (w=0.3, alpha=1.5, theta=12.4, s=23))",
  };
  for (const auto& text : specs) {
    const auto d = parse_distribution(text);
    const auto round = parse_distribution(serialize_distribution(*d));
    EXPECT_NEAR(round->mean(), d->mean(), 1e-9) << text;
    EXPECT_NEAR(round->variance(), d->variance(), 1e-6) << text;
  }
}

TEST(Spec, SpecifierLoadGetRender) {
  DistributionSpecifier gds;
  gds.load_spec_text(
      "# usage distributions\n"
      "think_time = exp(theta=5000)\n"
      "access_size = exp(theta=1024)\n");
  EXPECT_TRUE(gds.contains("think_time"));
  EXPECT_EQ(gds.names().size(), 2u);
  EXPECT_NEAR(gds.get("access_size")->mean(), 1024.0, 1e-9);
  EXPECT_THROW(gds.get("missing"), std::out_of_range);
  const auto plot = gds.render_ascii("think_time");
  EXPECT_NE(plot.find('*'), std::string::npos);
  const auto svg = gds.render_svg("think_time");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

TEST(Spec, SpecifierEmitsCdfTables) {
  DistributionSpecifier gds;
  gds.load_spec_text("x = exp(theta=100)\n");
  const auto table = gds.cdf_table("x", 128);
  EXPECT_EQ(table.size(), 128u);
  EXPECT_NEAR(table.quantile(0.5), 100.0 * std::log(2.0), 3.0);
}

TEST(Spec, SpecifierFitsFamilies) {
  util::RngStream rng(11, "fit");
  std::vector<double> data;
  for (int i = 0; i < 3000; ++i) data.push_back(rng.exponential(50.0));
  DistributionSpecifier gds;
  const auto fitted =
      gds.fit("fitted", data, DistributionSpecifier::Family::exponential);
  EXPECT_NEAR(fitted->mean(), 50.0, 4.0);
  EXPECT_TRUE(gds.contains("fitted"));
  EXPECT_NO_THROW(gds.fit("p", data, DistributionSpecifier::Family::phase_exponential, 2));
  EXPECT_NO_THROW(gds.fit("g", data, DistributionSpecifier::Family::multistage_gamma, 2));
}

TEST(Spec, SpecifierSerializeReloads) {
  DistributionSpecifier gds;
  gds.load_spec_text("a = exp(theta=10)\nb = gamma((w=1, alpha=2, theta=3, s=1))\n");
  DistributionSpecifier reload;
  reload.load_spec_text(gds.serialize());
  EXPECT_NEAR(reload.get("a")->mean(), 10.0, 1e-9);
  EXPECT_NEAR(reload.get("b")->mean(), 7.0, 1e-9);
}

// ---------------------------------------------------------------------------
// FSC.
// ---------------------------------------------------------------------------

TEST(Fsc, BuildsLayoutAndManifest) {
  fs::SimulatedFileSystem fsys;
  FscConfig config;
  config.num_users = 3;
  config.files_per_user = 40;
  config.system_files = 100;
  FileSystemCreator fsc(fsys, di86_file_profiles(), config);
  const CreatedFileSystem manifest = fsc.create();

  EXPECT_TRUE(fsys.exists("/system"));
  EXPECT_TRUE(fsys.exists("/users/u0"));
  EXPECT_TRUE(fsys.exists("/users/u2"));
  EXPECT_TRUE(fsys.exists("/users/u0/d0"));
  EXPECT_TRUE(fsys.exists("/system/notes0"));
  // 100 system + 3*40 user files, plus registered directories: /system,
  // /users, 2 notes + 2 other subdirs, and (1 home + 4 subdirs) x 3 users.
  EXPECT_EQ(manifest.file_count(), 100u + 120u + 2u + 4u + 15u);
  EXPECT_EQ(fsys.regular_file_count(), 220u);
  EXPECT_EQ(manifest.user_count(), 3u);

  // Every manifest entry resolves and has the recorded size.
  for (const auto& f : manifest.files()) {
    const auto st = fsys.stat(f.path);
    ASSERT_TRUE(st.ok()) << f.path;
    EXPECT_EQ(st.value().size, f.size) << f.path;
    EXPECT_EQ(st.value().inode, f.inode) << f.path;
  }
}

TEST(Fsc, PoolsRespectOwnership) {
  fs::SimulatedFileSystem fsys;
  FscConfig config;
  config.num_users = 2;
  config.files_per_user = 50;
  config.system_files = 80;
  FileSystemCreator fsc(fsys, di86_file_profiles(), config);
  const CreatedFileSystem manifest = fsc.create();

  const FileCategory user_rdonly{FileType::regular, FileOwner::user, UseMode::read_only};
  const auto& pool0 = manifest.pool(user_rdonly, 0);
  const auto& pool1 = manifest.pool(user_rdonly, 1);
  EXPECT_FALSE(pool0.empty());
  EXPECT_FALSE(pool1.empty());
  for (std::size_t idx : pool0) {
    EXPECT_EQ(manifest.files()[idx].owner_user, 0u);
    EXPECT_TRUE(manifest.files()[idx].path.starts_with("/users/u0/"));
  }
  // NOTES files are shared: the same pool regardless of user.
  const FileCategory notes{FileType::regular, FileOwner::notes, UseMode::read_only};
  EXPECT_EQ(&manifest.pool(notes, 0), &manifest.pool(notes, 1));
  for (std::size_t idx : manifest.pool(notes, 0)) {
    EXPECT_TRUE(manifest.files()[idx].path.starts_with("/system/"));
  }
}

TEST(Fsc, CategoryFractionsApproximatelyRespected) {
  fs::SimulatedFileSystem fsys;
  FscConfig config;
  config.num_users = 4;
  config.files_per_user = 500;
  config.system_files = 400;
  FileSystemCreator fsc(fsys, di86_file_profiles(), config);
  const CreatedFileSystem manifest = fsc.create();

  // Among user-owned regular files, TEMP should dominate RDONLY per the
  // 38.2% vs 21.8% Table 5.1 fractions (ratio ~1.75).
  std::size_t temp = 0, rdonly = 0;
  for (const auto& f : manifest.files()) {
    if (f.category.owner != FileOwner::user) continue;
    if (f.category.use == UseMode::temp) ++temp;
    if (f.category.use == UseMode::read_only && f.category.file_type == FileType::regular) {
      ++rdonly;
    }
  }
  EXPECT_GT(temp, rdonly);
  const double ratio = static_cast<double>(temp) / static_cast<double>(rdonly);
  EXPECT_NEAR(ratio, 0.382 / 0.218, 0.4);
}

TEST(Fsc, MeanSizesTrackTable51) {
  fs::SimulatedFileSystem fsys;
  FscConfig config;
  config.num_users = 2;
  config.files_per_user = 1500;
  config.system_files = 1000;
  FileSystemCreator fsc(fsys, di86_file_profiles(), config);
  const CreatedFileSystem manifest = fsc.create();

  double notes_sum = 0.0;
  std::size_t notes_n = 0;
  for (const auto& f : manifest.files()) {
    if (f.category.owner == FileOwner::notes && f.category.use == UseMode::read_only) {
      notes_sum += static_cast<double>(f.size);
      ++notes_n;
    }
  }
  ASSERT_GT(notes_n, 50u);
  EXPECT_NEAR(notes_sum / static_cast<double>(notes_n), 31347.0, 31347.0 * 0.25);
}

TEST(Fsc, DeterministicForFixedSeed) {
  const auto build = [](std::uint64_t seed) {
    fs::SimulatedFileSystem fsys;
    FscConfig config;
    config.num_users = 1;
    config.seed = seed;
    FileSystemCreator fsc(fsys, di86_file_profiles(), config);
    const auto manifest = fsc.create();
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto& f : manifest.files()) out.emplace_back(f.path, f.size);
    return out;
  };
  EXPECT_EQ(build(5), build(5));
  EXPECT_NE(build(5), build(6));
}

TEST(Fsc, RejectsBadConfig) {
  fs::SimulatedFileSystem fsys;
  FscConfig config;
  config.num_users = 0;
  EXPECT_THROW(FileSystemCreator(fsys, di86_file_profiles(), config), std::invalid_argument);
  EXPECT_THROW(FileSystemCreator(fsys, {}, FscConfig{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Usage log.
// ---------------------------------------------------------------------------

TEST(UsageLogTest, SerializationRoundTrips) {
  UsageLog log;
  OpRecord r;
  r.issue_time_us = 123.5;
  r.response_us = 42.25;
  r.user = 3;
  r.session = 7;
  r.op = fsmodel::FsOpType::write;
  r.requested_bytes = 1024;
  r.actual_bytes = 900;
  r.file_id = 55;
  r.file_size = 4096;
  r.category = FileCategory{FileType::regular, FileOwner::notes, UseMode::read_write};
  log.append(r);

  const UsageLog parsed = UsageLog::parse(log.serialize());
  ASSERT_EQ(parsed.size(), 1u);
  const OpRecord& p = parsed.records()[0];
  EXPECT_DOUBLE_EQ(p.issue_time_us, 123.5);
  EXPECT_DOUBLE_EQ(p.response_us, 42.25);
  EXPECT_EQ(p.user, 3u);
  EXPECT_EQ(p.session, 7u);
  EXPECT_EQ(p.op, fsmodel::FsOpType::write);
  EXPECT_EQ(p.requested_bytes, 1024u);
  EXPECT_EQ(p.actual_bytes, 900u);
  EXPECT_EQ(p.category.label(), "REG/NOTES/RD-WRT");
}

TEST(UsageLogTest, ParseRejectsGarbage) {
  EXPECT_THROW(UsageLog::parse("1\t2\t3\n"), std::invalid_argument);
  EXPECT_THROW(UsageLog::parse("a\tb\tc\td\te\tf\tg\th\ti\tj\tk\tl\n"), std::invalid_argument);
  EXPECT_EQ(UsageLog::parse("# comment only\n").size(), 0u);
}

// ---------------------------------------------------------------------------
// Extensions.
// ---------------------------------------------------------------------------

TEST(Ext, IndependentStreamIsUniform) {
  IndependentOpStream policy;
  util::RngStream rng(1, "ind");
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[policy.choose(4, 0, rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(Ext, MarkovStreamPersists) {
  MarkovOpStream policy(0.9);
  util::RngStream rng(1, "markov");
  int stayed = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (policy.choose(10, 3, rng) == 3) ++stayed;
  }
  // P(stay) = 0.9 + 0.1 * (1/10) = 0.91.
  EXPECT_NEAR(static_cast<double>(stayed) / n, 0.91, 0.03);
  EXPECT_THROW(MarkovOpStream(1.0), std::invalid_argument);
  EXPECT_THROW(MarkovOpStream(-0.1), std::invalid_argument);
}

TEST(Ext, MarkovWithoutPreviousFallsBackToUniform) {
  MarkovOpStream policy(0.9);
  util::RngStream rng(1, "markov2");
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[policy.choose(4, OpStreamPolicy::kNone, rng)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Ext, OffsetChoosersStayInRange) {
  util::RngStream rng(2, "off");
  for (const AccessPattern p : {AccessPattern::uniform_random, AccessPattern::zipf_block}) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t off = choose_offset(p, 10000, 512, rng);
      EXPECT_LE(off, 10000u - 512u);
    }
  }
  EXPECT_EQ(choose_offset(AccessPattern::uniform_random, 100, 512, rng), 0u);
  EXPECT_THROW(choose_offset(AccessPattern::sequential, 100, 10, rng), std::logic_error);
}

TEST(Ext, ZipfFavoursHead) {
  util::RngStream rng(3, "zipf");
  std::size_t head = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (choose_offset(AccessPattern::zipf_block, 100000, 1, rng) < 10000) ++head;
  }
  // Log-uniform: P(off < 10%) = log(10^4)/log(10^5) ~ 0.8.
  EXPECT_GT(static_cast<double>(head) / n, 0.6);
}

TEST(Ext, DiurnalModulatorOscillates) {
  DiurnalModulator m(1000.0, 0.5, 2.0);
  EXPECT_NEAR(m.multiplier(0.0), 2.0, 1e-9);      // idle peak at phase 0
  EXPECT_NEAR(m.multiplier(500.0), 0.5, 1e-9);    // busy trough mid-period
  EXPECT_NEAR(m.multiplier(1000.0), 2.0, 1e-9);   // periodic
  EXPECT_THROW(DiurnalModulator(0.0, 1.0, 1.0), std::invalid_argument);
  ConstantModulator c;
  EXPECT_DOUBLE_EQ(c.multiplier(123.0), 1.0);
}

}  // namespace
}  // namespace wlgen::core
