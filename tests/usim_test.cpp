// Tests for the User Simulator: the paper's logical constraints on the
// operation stream (open-before-read, sequential access, close/unlink
// ordering), determinism, accounting, and the extension switches.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"

namespace wlgen::core {
namespace {

struct Rig {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  std::unique_ptr<fsmodel::NfsModel> model;
  CreatedFileSystem manifest;

  explicit Rig(std::size_t users, std::uint64_t seed = 1) {
    fsys.set_clock([this] { return simulation.now(); });
    model = std::make_unique<fsmodel::NfsModel>(simulation);
    FscConfig config;
    config.num_users = users;
    config.seed = seed;
    FileSystemCreator fsc(fsys, di86_file_profiles(), config);
    manifest = fsc.create();
  }
};

UsimConfig small_config(std::size_t users, std::size_t sessions, std::uint64_t seed = 7) {
  UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.seed = seed;
  return config;
}

TEST(Usim, CompletesAllSessions) {
  Rig rig(2);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     small_config(2, 5));
  usim.run();
  EXPECT_EQ(usim.sessions_completed(), 10u);
  EXPECT_GT(usim.total_ops(), 100u);
  EXPECT_EQ(usim.log().size(), usim.total_ops());
  EXPECT_EQ(rig.fsys.open_descriptor_count(), 0u);  // everything closed
}

TEST(Usim, RunTwiceRejected) {
  Rig rig(1);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     small_config(1, 1));
  usim.run();
  EXPECT_THROW(usim.run(), std::logic_error);
}

TEST(Usim, OpenAlwaysPrecedesDataOps) {
  Rig rig(1);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     small_config(1, 4));
  usim.run();

  // Per (session, file): the op order must be creat/open -> data -> close,
  // the paper's "obvious logical constraints" (section 3.1.4).
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> open_depth;
  for (const auto& r : usim.log().records()) {
    const auto key = std::make_pair(r.session, r.file_id);
    switch (r.op) {
      case fsmodel::FsOpType::open:
      case fsmodel::FsOpType::creat:
        ++open_depth[key];
        break;
      case fsmodel::FsOpType::close:
        --open_depth[key];
        EXPECT_GE(open_depth[key], 0) << "close without open";
        break;
      case fsmodel::FsOpType::read:
      case fsmodel::FsOpType::write:
      case fsmodel::FsOpType::lseek:
        EXPECT_GT(open_depth[key], 0)
            << "data op on closed file " << r.file_id << " in session " << r.session;
        break;
      default:
        break;
    }
  }
}

TEST(Usim, TempFilesAreUnlinkedAfterClose) {
  Rig rig(1);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     small_config(1, 6));
  usim.run();

  std::set<std::uint64_t> temp_created, temp_unlinked;
  std::map<std::uint64_t, bool> closed;
  for (const auto& r : usim.log().records()) {
    if (r.category.use != UseMode::temp) continue;
    if (r.op == fsmodel::FsOpType::creat) temp_created.insert(r.file_id);
    if (r.op == fsmodel::FsOpType::close) closed[r.file_id] = true;
    if (r.op == fsmodel::FsOpType::unlink) {
      temp_unlinked.insert(r.file_id);
      EXPECT_TRUE(closed[r.file_id]) << "unlink before close on " << r.file_id;
    }
  }
  ASSERT_FALSE(temp_created.empty());
  EXPECT_EQ(temp_created, temp_unlinked);
  // No tmp_* litter remains in any user directory.
  const auto names = rig.fsys.readdir(CreatedFileSystem::user_dir(0)).value();
  for (const auto& n : names) EXPECT_FALSE(n.starts_with("tmp_")) << n;
}

TEST(Usim, SequentialReadsAdvanceThroughFile) {
  Rig rig(1);
  UsimConfig config = small_config(1, 3);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     config);
  usim.run();
  // Reads on a descriptor re-visit offset 0 only via a logged lseek.  The
  // log keys by (session, file); a session may open the same pool file via
  // two work items with independent offsets, so the strict invariant is
  // checked only for files opened exactly once in the session.
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> opens;
  for (const auto& r : usim.log().records()) {
    if (r.op == fsmodel::FsOpType::open || r.op == fsmodel::FsOpType::creat) {
      ++opens[std::make_pair(r.session, r.file_id)];
    }
  }
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> since_rewind;
  std::size_t checked = 0;
  for (const auto& r : usim.log().records()) {
    const auto key = std::make_pair(r.session, r.file_id);
    if (opens[key] != 1) continue;
    if (r.op == fsmodel::FsOpType::lseek) {
      since_rewind[key] = 0;
    } else if (r.op == fsmodel::FsOpType::read && r.category.use == UseMode::read_only) {
      since_rewind[key] += r.actual_bytes;
      EXPECT_LE(since_rewind[key], r.file_size) << "read past EOF without rewind";
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);  // the invariant was actually exercised
}

TEST(Usim, ReadsAreTruncatedAtEof) {
  Rig rig(1);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     small_config(1, 5));
  usim.run();
  const UsageAnalyzer analyzer(usim.log());
  const auto access = analyzer.access_size_stats();
  // Mean actual access below the 1024-byte request mean (Table 5.3's 946.71).
  EXPECT_LT(access.mean(), 1024.0);
  EXPECT_GT(access.mean(), 500.0);
}

TEST(Usim, DeterministicForFixedSeed) {
  const auto run_once = [](std::uint64_t seed) {
    Rig rig(2, 3);
    UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                       small_config(2, 3, seed));
    usim.run();
    return usim.log().serialize();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(Usim, DrawBatchIsDeterministicAndCompletesAllSessions) {
  // draw_batch > 1 realises a different random sequence than the unbatched
  // run (documented in UsimConfig), but it must stay deterministic and the
  // workload must stay structurally intact.
  auto run_once = [](std::size_t draw_batch) {
    Rig rig(3);
    UsimConfig config = small_config(3, 4);
    config.draw_batch = draw_batch;
    UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest,
                       default_population(), config);
    usim.run();
    EXPECT_EQ(usim.sessions_completed(), 12u);
    EXPECT_EQ(rig.fsys.open_descriptor_count(), 0u);
    return usim.take_log().serialize();
  };
  const std::string batched_a = run_once(16);
  const std::string batched_b = run_once(16);
  EXPECT_EQ(batched_a, batched_b);

  // Loose statistical consistency with the unbatched run: both realise the
  // same workload model, so aggregate op counts land in the same ballpark.
  const std::string unbatched = run_once(1);
  const auto ops_of = [](const std::string& log) {
    return static_cast<double>(std::count(log.begin(), log.end(), '\n'));
  };
  EXPECT_NE(batched_a, unbatched);
  EXPECT_GT(ops_of(batched_a), 0.5 * ops_of(unbatched));
  EXPECT_LT(ops_of(batched_a), 2.0 * ops_of(unbatched));
}

TEST(Usim, PopulationMixAssignsTypes) {
  Rig rig(4);
  UsimConfig config = small_config(4, 2);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, mixed_population(0.5),
                     config);
  usim.run();
  EXPECT_EQ(usim.sessions_completed(), 8u);
}

TEST(Usim, ZeroThinkTimeUsersSaturate) {
  // Extremely heavy users (think 0) finish sooner in simulated time than the
  // same work with 20 ms thinking, but issue the same kind of ops.
  const auto elapsed_for = [](const Population& pop) {
    Rig rig(1);
    UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, pop,
                       small_config(1, 3));
    usim.run();
    return rig.simulation.now();
  };
  Population extreme;
  extreme.groups.push_back({extremely_heavy_user(), 1.0});
  Population light;
  light.groups.push_back({light_user(), 1.0});
  EXPECT_LT(elapsed_for(extreme), elapsed_for(light) / 2.0);
}

TEST(Usim, ValidatesConfiguration) {
  Rig rig(1);
  EXPECT_THROW(UserSimulator(rig.simulation, rig.fsys, *rig.model, rig.manifest,
                             default_population(), small_config(0, 1)),
               std::invalid_argument);
  EXPECT_THROW(UserSimulator(rig.simulation, rig.fsys, *rig.model, rig.manifest,
                             default_population(), small_config(1, 0)),
               std::invalid_argument);
  // More users than the FSC laid out directories for.
  EXPECT_THROW(UserSimulator(rig.simulation, rig.fsys, *rig.model, rig.manifest,
                             default_population(), small_config(5, 1)),
               std::invalid_argument);
  UsimConfig bad = small_config(1, 1);
  bad.windows_per_user = 0;
  EXPECT_THROW(
      UserSimulator(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(), bad),
      std::invalid_argument);
  UsimConfig bad_batch = small_config(1, 1);
  bad_batch.draw_batch = 0;
  EXPECT_THROW(UserSimulator(rig.simulation, rig.fsys, *rig.model, rig.manifest,
                             default_population(), bad_batch),
               std::invalid_argument);
}

TEST(Usim, CollectLogOffKeepsCounters) {
  Rig rig(1);
  UsimConfig config = small_config(1, 3);
  config.collect_log = false;
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     config);
  usim.run();
  EXPECT_EQ(usim.log().size(), 0u);
  EXPECT_GT(usim.total_ops(), 0u);
}

TEST(Usim, MarkovStreamProducesLongerRuns) {
  const auto mean_run_length = [](double persistence) {
    Rig rig(1);
    UsimConfig config = small_config(1, 6);
    config.markov_persistence = persistence;
    UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                       config);
    usim.run();
    // Average length of same-file op runs in the log.
    std::uint64_t runs = 0, ops = 0;
    std::uint64_t prev_file = 0;
    bool first = true;
    for (const auto& r : usim.log().records()) {
      ++ops;
      if (first || r.file_id != prev_file) ++runs;
      prev_file = r.file_id;
      first = false;
    }
    return static_cast<double>(ops) / static_cast<double>(runs);
  };
  EXPECT_GT(mean_run_length(0.95), mean_run_length(-1.0) * 1.3);
}

TEST(Usim, RandomAccessPatternSkipsRewinds) {
  Rig rig(1);
  UsimConfig config = small_config(1, 4);
  config.pattern = AccessPattern::uniform_random;
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     config);
  usim.run();
  std::size_t lseeks = 0, reads = 0;
  for (const auto& r : usim.log().records()) {
    if (r.op == fsmodel::FsOpType::lseek) ++lseeks;
    if (r.op == fsmodel::FsOpType::read) ++reads;
  }
  EXPECT_GT(reads, 50u);
  EXPECT_EQ(lseeks, 0u);  // random offsets never hit the EOF-rewind path
}

TEST(Usim, StatBeforeOpenEmitsStats) {
  Rig rig(1);
  UsimConfig config = small_config(1, 4);
  config.stat_before_open_prob = 1.0;
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     config);
  usim.run();
  std::size_t stats = 0, opens = 0;
  for (const auto& r : usim.log().records()) {
    if (r.op == fsmodel::FsOpType::stat) ++stats;
    if (r.op == fsmodel::FsOpType::open) ++opens;
  }
  EXPECT_EQ(stats, opens);  // every open of an existing file was stat-ed
  EXPECT_GT(stats, 0u);
}

TEST(Usim, MultiWindowUsersRunConcurrentSessions) {
  Rig rig(1);
  UsimConfig config = small_config(1, 2);
  config.windows_per_user = 3;
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     config);
  usim.run();
  EXPECT_EQ(usim.sessions_completed(), 6u);  // 3 windows x 2 sessions
  // Session ordinals are unique per user even across windows.
  std::set<std::uint32_t> ordinals;
  for (const auto& r : usim.log().records()) ordinals.insert(r.session);
  EXPECT_EQ(ordinals.size(), 6u);
}

TEST(Usim, WorksAgainstLocalModelToo) {
  Rig rig(1);
  fsmodel::LocalDiskModel local(rig.simulation);
  UserSimulator usim(rig.simulation, rig.fsys, local, rig.manifest, default_population(),
                     small_config(1, 3));
  usim.run();
  EXPECT_EQ(usim.sessions_completed(), 3u);
  EXPECT_GT(usim.total_ops(), 50u);
}

TEST(Usim, NewFilesLandInUserDirectories) {
  Rig rig(1);
  UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                     small_config(1, 5));
  usim.run();
  // New files are scattered across the user's home and its subdirectories.
  const FileCategory user_dirs{FileType::directory, FileOwner::user, UseMode::read_only};
  bool saw_new = false;
  for (std::size_t idx : rig.manifest.pool(user_dirs, 0)) {
    const auto names = rig.fsys.readdir(rig.manifest.files()[idx].path);
    if (!names.ok()) continue;
    for (const auto& name : names.value()) {
      if (name.starts_with("new_")) saw_new = true;
      EXPECT_FALSE(name.starts_with("tmp_")) << name;  // temps were unlinked
    }
  }
  EXPECT_TRUE(saw_new);
}

TEST(Usim, ThinkTimeModulatorSlowsSimulatedTime) {
  const auto elapsed_with = [](std::shared_ptr<const ThinkTimeModulator> mod) {
    Rig rig(1);
    UsimConfig config = small_config(1, 3);
    config.think_modulator = std::move(mod);
    UserSimulator usim(rig.simulation, rig.fsys, *rig.model, rig.manifest, default_population(),
                       config);
    usim.run();
    return rig.simulation.now();
  };
  // A modulator pinned at 10x think time stretches the run.
  class TenX final : public ThinkTimeModulator {
   public:
    double multiplier(double) const override { return 10.0; }
    std::string name() const override { return "10x"; }
  };
  EXPECT_GT(elapsed_with(std::make_shared<TenX>()), elapsed_with(nullptr) * 3.0);
}

}  // namespace
}  // namespace wlgen::core
