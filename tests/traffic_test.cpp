// Tests for the open-system traffic engine (src/traffic/):
//
// * statistical properties of the arrival processes — KS test of Poisson
//   interarrivals against the exact exponential CDF, index-of-dispersion
//   over-dispersion of the MMPP, KS of heavy-tailed gaps against the Pareto
//   CDF, and the intensity-profile integral predicting realized counts;
// * validation negatives for ArrivalConfig / IntensityProfile / FaultPlan;
// * churn membership purity and session postponement;
// * fault behaviour end to end on exp::run_workload (slowdown scales the
//   level, a factor-1 window is byte-neutral);
// * the determinism pins: open-loop + fault scenario digests byte-identical
//   across shards {1,2,3} x threads {1,8} on both runner modes, and across
//   a checkpoint/resume cycle with a mid-run fault.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <vector>

#include "dist/basic.h"
#include "exp/workload.h"
#include "scenario/run.h"
#include "scenario/spec.h"
#include "stats/tests.h"
#include "traffic/arrivals.h"
#include "traffic/faults.h"
#include "traffic/traffic.h"
#include "util/rng.h"

namespace wlgen::traffic {
namespace {

// --- arrival process statistics ---------------------------------------------

std::vector<double> gaps_of(const std::vector<double>& arrivals) {
  std::vector<double> gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  return gaps;
}

TEST(Arrivals, PoissonInterarrivalsPassKsAgainstExponential) {
  ArrivalConfig config;
  config.kind = ArrivalKind::poisson;
  config.rate_per_sec = 2.0;
  config.sessions = 2000;
  const std::vector<double> arrivals = generate_arrivals(config, 1991);
  ASSERT_EQ(arrivals.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));

  // Base rate 2/s => exponential gaps with mean 0.5e6 us.
  const dist::ExponentialDistribution reference(0.5e6);
  const stats::TestResult ks = stats::ks_test(gaps_of(arrivals), reference);
  EXPECT_GT(ks.p_value, 0.01) << "KS D = " << ks.statistic;
}

TEST(Arrivals, HeavyTailedInterarrivalsPassKsAgainstPareto) {
  ArrivalConfig config;
  config.kind = ArrivalKind::heavy;
  config.rate_per_sec = 1.0;
  config.pareto_alpha = 1.5;
  config.sessions = 2000;
  const std::vector<double> arrivals = generate_arrivals(config, 7);

  // Pareto scale chosen so the mean gap matches 1 / rate (arrivals.cpp).
  const double mean_us = 1e6;
  const double xm = mean_us * (config.pareto_alpha - 1.0) / config.pareto_alpha;
  const ParetoDistribution reference(config.pareto_alpha, xm);
  const stats::TestResult ks = stats::ks_test(gaps_of(arrivals), reference);
  EXPECT_GT(ks.p_value, 0.01) << "KS D = " << ks.statistic;
}

/// Index of dispersion of per-window arrival counts: Var[N] / E[N].
double index_of_dispersion(const std::vector<double>& arrivals, double window_us) {
  const std::size_t windows =
      static_cast<std::size_t>(arrivals.back() / window_us);
  std::vector<double> counts(windows, 0.0);
  for (const double t : arrivals) {
    const auto w = static_cast<std::size_t>(t / window_us);
    if (w < windows) counts[w] += 1.0;
  }
  const double mean =
      std::accumulate(counts.begin(), counts.end(), 0.0) / static_cast<double>(windows);
  double var = 0.0;
  for (const double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(windows);
  return mean > 0.0 ? var / mean : 0.0;
}

TEST(Arrivals, MmppIsOverdispersedRelativeToPoisson) {
  ArrivalConfig poisson;
  poisson.kind = ArrivalKind::poisson;
  poisson.rate_per_sec = 1.0;
  poisson.sessions = 3000;

  ArrivalConfig mmpp = poisson;
  mmpp.kind = ArrivalKind::mmpp;  // defaults: burst_ratio 8, 2s burst / 8s idle

  const double window_us = 5e6;
  const double poisson_iod =
      index_of_dispersion(generate_arrivals(poisson, 1991), window_us);
  const double mmpp_iod = index_of_dispersion(generate_arrivals(mmpp, 1991), window_us);

  // A Poisson count process has IoD 1; the 2-state MMPP must sit well above.
  EXPECT_GT(poisson_iod, 0.6);
  EXPECT_LT(poisson_iod, 1.6);
  EXPECT_GT(mmpp_iod, 2.0);
  EXPECT_GT(mmpp_iod, 1.5 * poisson_iod);
}

TEST(Arrivals, ProfileIntegralPredictsRealizedCounts) {
  ArrivalConfig config;
  config.kind = ArrivalKind::poisson;
  config.rate_per_sec = 2.0;
  config.sessions = 1200;
  config.profile.points = {{0.0, 0.5}, {300e6, 2.0}};
  config.profile.flash_at_us = 60e6;
  config.profile.flash_duration_us = 30e6;
  config.profile.flash_magnitude = 3.0;
  config.validate();

  const std::vector<double> arrivals = generate_arrivals(config, 23);
  const auto count_in = [&](double t0, double t1) {
    return static_cast<double>(std::count_if(
        arrivals.begin(), arrivals.end(), [&](double t) { return t >= t0 && t < t1; }));
  };

  // Realized count over [0, 200s] within 5 sigma of the integrated rate.
  const double expected =
      config.rate_per_sec / 1e6 * config.profile.integral(0.0, 200e6);
  const double realized = count_in(0.0, 200e6);
  EXPECT_NEAR(realized, expected, 5.0 * std::sqrt(expected))
      << "expected " << expected << ", realized " << realized;

  // The flash-crowd window must be visibly hotter than an equal-width
  // window after it (multiplier 3x vs the diurnal ramp alone).
  EXPECT_GT(count_in(60e6, 90e6), 1.5 * count_in(120e6, 150e6));
}

TEST(IntensityProfile, IntegralMatchesRiemannSum) {
  IntensityProfile profile;
  profile.points = {{10e6, 0.25}, {40e6, 2.0}, {90e6, 1.0}};
  profile.flash_at_us = 30e6;
  profile.flash_duration_us = 25e6;
  profile.flash_magnitude = 4.0;
  profile.validate();

  const double t0 = 0.0, t1 = 120e6;
  const int steps = 200000;
  const double dt = (t1 - t0) / steps;
  double riemann = 0.0;
  for (int i = 0; i < steps; ++i) {
    riemann += profile.multiplier(t0 + (i + 0.5) * dt) * dt;
  }
  // The analytic integral is exact; the midpoint sum carries O(dt) error at
  // each kink (knots + flash edges), so the tolerance reflects the sum.
  EXPECT_NEAR(profile.integral(t0, t1), riemann, 2e-5 * riemann);
  // And the supremum really bounds the profile (the thinning contract).
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(profile.multiplier(t0 + i * (t1 - t0) / 1000.0), profile.peak() + 1e-12);
  }
}

TEST(Arrivals, GenerationIsAPureFunctionOfConfigAndSeed) {
  ArrivalConfig config;
  config.kind = ArrivalKind::mmpp;
  config.rate_per_sec = 0.5;
  config.sessions = 200;
  EXPECT_EQ(generate_arrivals(config, 42), generate_arrivals(config, 42));
  EXPECT_NE(generate_arrivals(config, 42), generate_arrivals(config, 43));

  // Dealing to users preserves the multiset and per-user order.
  const std::vector<double> all = generate_arrivals(config, 42);
  const auto dealt = assign_arrivals(config, 3, 42);
  ASSERT_EQ(dealt.size(), 3u);
  std::vector<double> merged;
  for (const auto& user : dealt) {
    EXPECT_TRUE(std::is_sorted(user.begin(), user.end()));
    merged.insert(merged.end(), user.begin(), user.end());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, all);
}

TEST(Pareto, DistributionInterfaceIsConsistent) {
  const ParetoDistribution pareto(1.5, 2.0e5);
  EXPECT_DOUBLE_EQ(pareto.mean(), 1.5 * 2.0e5 / 0.5);
  EXPECT_DOUBLE_EQ(pareto.cdf(pareto.quantile(0.37)), 0.37);
  EXPECT_DOUBLE_EQ(pareto.cdf(1.0e5), 0.0);  // below the scale
  util::RngStream rng(9, "pareto");
  for (int i = 0; i < 100; ++i) EXPECT_GE(pareto.sample(rng), pareto.lower_bound());
}

// --- validation negatives ---------------------------------------------------

TEST(Validation, ArrivalConfigRejectsBadParameters) {
  ArrivalConfig config;
  config.rate_per_sec = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.rate_per_sec = 1.0;
  config.sessions = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.sessions = 1;
  config.kind = ArrivalKind::heavy;
  config.pareto_alpha = 1.0;  // mean would not exist
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.kind = ArrivalKind::mmpp;
  config.pareto_alpha = 1.5;
  config.mean_burst_us = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Validation, IntensityProfileRejectsBadShapes) {
  IntensityProfile unsorted;
  unsorted.points = {{5e6, 1.0}, {5e6, 2.0}};
  EXPECT_THROW(unsorted.validate(), std::invalid_argument);

  IntensityProfile negative;
  negative.points = {{0.0, -0.5}};
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  IntensityProfile zero;
  zero.points = {{0.0, 0.0}, {10e6, 0.0}};
  EXPECT_THROW(zero.validate(), std::invalid_argument);

  IntensityProfile flash;
  flash.flash_magnitude = 0.0;
  EXPECT_THROW(flash.validate(), std::invalid_argument);
}

TEST(Validation, FaultPlanRejectsBadWindows) {
  FaultPlan inverted;
  inverted.slowdowns = {{10e6, 5e6, 2.0}};
  EXPECT_THROW(inverted.validate(), std::invalid_argument);

  FaultPlan overlapping;
  overlapping.slowdowns = {{0.0, 10e6, 2.0}, {5e6, 15e6, 2.0}};
  EXPECT_THROW(overlapping.validate(), std::invalid_argument);

  FaultPlan zero_factor;
  zero_factor.slowdowns = {{0.0, 1e6, 0.0}};
  EXPECT_THROW(zero_factor.validate(), std::invalid_argument);

  FaultPlan negative_flush;
  negative_flush.flush_times_us = {-1.0};
  EXPECT_THROW(negative_flush.validate(), std::invalid_argument);

  FaultPlan bad_churn;
  bad_churn.churns = {{0.0, 1e6, 1.5}};
  EXPECT_THROW(bad_churn.validate(), std::invalid_argument);

  // Disjoint, ordered windows are fine in any listed order.
  FaultPlan fine;
  fine.slowdowns = {{20e6, 30e6, 2.0}, {0.0, 10e6, 4.0}};
  EXPECT_NO_THROW(fine.validate());
}

// --- churn ------------------------------------------------------------------

TEST(Churn, MembershipIsPureAndMatchesTheFraction) {
  std::size_t out = 0;
  for (std::size_t user = 0; user < 1000; ++user) {
    const bool away = churned_out(1991, user, 0, 0.5);
    EXPECT_EQ(away, churned_out(1991, user, 0, 0.5));  // pure
    if (away) ++out;
  }
  EXPECT_NEAR(static_cast<double>(out), 500.0, 80.0);
  EXPECT_FALSE(churned_out(1991, 3, 0, 0.0));
  EXPECT_TRUE(churned_out(1991, 3, 0, 1.0));
}

TEST(Churn, AdjustedTimeSkipsCoveringWindows) {
  const std::vector<ChurnWindow> churns = {{10e6, 20e6, 1.0}, {20e6, 30e6, 1.0}};
  // Full churn: a start inside the first window cascades through the second.
  EXPECT_DOUBLE_EQ(churn_adjusted(churns, 1, 0, 15e6), 30e6);
  // Outside any window: untouched.
  EXPECT_DOUBLE_EQ(churn_adjusted(churns, 1, 0, 5e6), 5e6);
  EXPECT_DOUBLE_EQ(churn_adjusted(churns, 1, 0, 31e6), 31e6);
  // Zero fraction never postpones.
  EXPECT_DOUBLE_EQ(churn_adjusted({{0.0, 50e6, 0.0}}, 1, 0, 25e6), 25e6);
}

TEST(Churn, FullChurnWindowPostponesEveryOpenLoopSession) {
  exp::WorkloadConfig config;
  config.num_users = 2;
  config.seed = 5;
  ArrivalConfig arrivals;
  arrivals.rate_per_sec = 1.0;  // all 8 arrivals land in the first ~10s
  arrivals.sessions = 8;
  config.traffic.arrivals = arrivals;
  config.traffic.faults.churns = {{0.0, 1e9, 1.0}};
  const exp::WorkloadOutput out = exp::run_workload(config);
  ASSERT_FALSE(out.log.empty());
  for (const auto& record : out.log.records()) {
    EXPECT_GE(record.issue_time_us, 1e9);
  }
}

// --- faults end to end on the workload engine -------------------------------

TEST(Faults, SlowdownWindowScalesTheResponseLevel) {
  exp::WorkloadConfig baseline;
  baseline.num_users = 2;
  baseline.sessions_per_user = 4;
  const double base = exp::run_workload(baseline).response_per_byte_us;
  ASSERT_GT(base, 0.0);

  exp::WorkloadConfig slowed = baseline;
  slowed.traffic.faults.slowdowns = {{0.0, 1e15, 10.0}};  // covers the whole run
  const double slow = exp::run_workload(slowed).response_per_byte_us;
  EXPECT_GT(slow, 5.0 * base);

  // A factor-1 window is a no-op and must not move a single bit.
  exp::WorkloadConfig neutral = baseline;
  neutral.traffic.faults.slowdowns = {{0.0, 1e15, 1.0}};
  EXPECT_EQ(exp::run_workload(neutral).log.serialize(), exp::run_workload(baseline).log.serialize());
}

TEST(Faults, CacheFlushCannotImproveTheRun) {
  exp::WorkloadConfig baseline;
  baseline.num_users = 2;
  baseline.sessions_per_user = 4;
  const exp::WorkloadOutput before = exp::run_workload(baseline);

  exp::WorkloadConfig flushed = baseline;
  flushed.traffic.faults.flush_times_us = {before.simulated_us / 2.0};
  const exp::WorkloadOutput after = exp::run_workload(flushed);
  // Refilling cold caches costs time; the op timeline must differ and the
  // pooled level must not get faster.
  EXPECT_NE(after.log.serialize(), before.log.serialize());
  EXPECT_GE(after.response_per_byte_us, before.response_per_byte_us);
}

TEST(OpenLoop, SessionBudgetIsTheArrivalCount) {
  exp::WorkloadConfig config;
  config.num_users = 3;
  config.sessions_per_user = 50;  // must be ignored under open-loop arrivals
  ArrivalConfig arrivals;
  arrivals.rate_per_sec = 0.5;
  arrivals.sessions = 12;
  config.traffic.arrivals = arrivals;
  const exp::WorkloadOutput out = exp::run_workload(config);
  EXPECT_EQ(out.sessions.size(), 12u);
}

// --- scenario determinism pins ----------------------------------------------

std::string digest_of(const std::string& text, std::size_t threads) {
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_text(text);
  scenario::RunOptions options;
  options.threads = threads;
  return scenario::run_scenario(spec, options).stats_digest;
}

std::string sharded_traffic_text(std::size_t shards, const std::string& log_section = "",
                                 const std::string& sharded_extra = "") {
  return "[scenario]\nmode = sharded\nname = traffic-pin\nseed = 11\n"
         "[workload]\nusers = 6\nsessions = 3\n"
         "[sharded]\nshards = " + std::to_string(shards) + "\n" + sharded_extra + log_section +
         "[arrivals]\nprocess = mmpp\nrate = 0.5\nsessions = 24\n"
         "diurnal = 0:0.5, 60:2\n"
         "flash_at = 20\nflash_duration = 10\nflash_magnitude = 3\n"
         "[faults]\nslowdown = 5:15:4\nflush = 10, 30\nchurn = 0:25:0.5\n"
         "[model]\nname = nfs\n";
}

TEST(TrafficDigest, ShardedIsShardAndThreadCountInvariant) {
  const std::string reference = digest_of(sharded_traffic_text(1), 1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t shards : {1u, 2u, 3u}) {
    for (const std::size_t threads : {1u, 8u}) {
      EXPECT_EQ(digest_of(sharded_traffic_text(shards), threads), reference)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(TrafficDigest, ContendedIsThreadCountInvariant) {
  const std::string text =
      "[scenario]\nmode = contended\nname = traffic-pin-contended\nseed = 11\n"
      "[workload]\nusers = 2\nsessions = 3\n"
      "[contended]\nreplications = 2\n"
      "[arrivals]\nprocess = poisson\nrate = 0.05\nsessions = 10\n"
      "[faults]\nslowdown = 20:60:5\nflush = 40\n"
      "[model]\nname = nfs\n";
  const std::string one = digest_of(text, 1);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, digest_of(text, 8));
}

TEST(TrafficDigest, MidRunFaultSurvivesCheckpointResume) {
  const auto spool = std::filesystem::path(::testing::TempDir()) / "wlgen_traffic_resume";
  std::filesystem::remove_all(spool);
  const std::string log_section =
      "[log]\nspill = true\ncheckpoint = true\nspool_dir = " + spool.string() + "\n";
  const std::string first_text = sharded_traffic_text(2, log_section);
  const std::string resumed_text = sharded_traffic_text(2, log_section, "resume = true\n");

  const std::string first = digest_of(first_text, 2);
  // Every shard resumes from its checkpoint; the mid-run slowdown, flushes
  // and churn must replay byte-identically.
  EXPECT_EQ(digest_of(resumed_text, 2), first);
  std::filesystem::remove_all(spool);
}

// --- scenario parsing of the traffic sections -------------------------------

TEST(TrafficScenario, ParsesArrivalsAndFaultsWithSecondConversion) {
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_text(
      "[scenario]\nmode = sharded\nname = t\n"
      "[workload]\nusers = 4\nsessions = 2\n"
      "[arrivals]\nprocess = heavy\nrate = 0.25\npareto_alpha = 1.8\n"
      "diurnal = 0:0.5, 120:1.5\nflash_at = 30\nflash_duration = 15\nflash_magnitude = 2\n"
      "[faults]\nslowdown = 10:20:3.5\nflush = 5, 25\nchurn = 0:30:0.25\n"
      "[model]\nname = nfs\n");
  ASSERT_TRUE(spec.traffic.arrivals.has_value());
  const ArrivalConfig& arrivals = *spec.traffic.arrivals;
  EXPECT_EQ(arrivals.kind, ArrivalKind::heavy);
  EXPECT_DOUBLE_EQ(arrivals.rate_per_sec, 0.25);
  EXPECT_DOUBLE_EQ(arrivals.pareto_alpha, 1.8);
  ASSERT_EQ(arrivals.profile.points.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals.profile.points[1].t_us, 120e6);
  EXPECT_DOUBLE_EQ(arrivals.profile.flash_at_us, 30e6);
  EXPECT_DOUBLE_EQ(arrivals.profile.flash_duration_us, 15e6);
  ASSERT_EQ(spec.traffic.faults.slowdowns.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.traffic.faults.slowdowns[0].begin_us, 10e6);
  EXPECT_DOUBLE_EQ(spec.traffic.faults.slowdowns[0].end_us, 20e6);
  EXPECT_DOUBLE_EQ(spec.traffic.faults.slowdowns[0].factor, 3.5);
  EXPECT_EQ(spec.traffic.faults.flush_times_us, (std::vector<double>{5e6, 25e6}));
  ASSERT_EQ(spec.traffic.faults.churns.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.traffic.faults.churns[0].fraction, 0.25);
  // The spec summary and the fingerprint tag both reflect the sections.
  EXPECT_NE(spec.summary().find("arrivals"), std::string::npos);
  EXPECT_FALSE(spec.traffic.tag().empty());
}

TEST(TrafficScenario, DefaultSessionBudgetIsTheClosedLoopVolume) {
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_text(
      "[scenario]\nmode = sharded\nname = t\n"
      "[workload]\nusers = 4\nsessions = 5\n"
      "[arrivals]\nrate = 1\n"
      "[model]\nname = nfs\n");
  ASSERT_TRUE(spec.traffic.arrivals.has_value());
  EXPECT_EQ(spec.traffic.arrivals->sessions, 20u);  // 4 users x 5 sessions
}

}  // namespace
}  // namespace wlgen::traffic
