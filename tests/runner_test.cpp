// Tests for the parallel simulation runners: the deterministic partitioning
// rule, the (time, user) merge contract, the headline guarantee that shard
// count and thread count never change the sharded runner's merged usage log
// or aggregates — bit for bit — and the contended runner's mirror contract:
// thread count and replication batching never change the merged per-point
// statistics.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/analysis.h"
#include "core/presets.h"
#include "fs/filesystem.h"
#include "fsmodel/nfs_model.h"
#include "runner/checkpoint.h"
#include "runner/contended_runner.h"
#include "runner/sharded_runner.h"

namespace wlgen::runner {
namespace {

// --- partitioning rule ------------------------------------------------------

TEST(Partition, CoversDisjointAndBalanced) {
  for (std::size_t users : {1u, 7u, 16u, 100u}) {
    for (std::size_t shards : {1u, 2u, 3u, 5u, 16u}) {
      const auto ranges = partition_users(users, shards);
      ASSERT_EQ(ranges.size(), shards);
      std::size_t covered = 0;
      std::size_t max_size = 0, min_size = users + 1;
      for (std::size_t s = 0; s < ranges.size(); ++s) {
        EXPECT_EQ(ranges[s].begin, covered) << "gap or overlap at shard " << s;
        covered = ranges[s].end;
        max_size = std::max(max_size, ranges[s].size());
        min_size = std::min(min_size, ranges[s].size());
      }
      EXPECT_EQ(covered, users);
      EXPECT_LE(max_size - min_size, 1u) << users << " users over " << shards << " shards";
    }
  }
}

TEST(Partition, ShardOfUserInvertsTheRule) {
  for (std::size_t users : {1u, 9u, 64u}) {
    for (std::size_t shards : {1u, 4u, 7u}) {
      const auto ranges = partition_users(users, shards);
      for (std::size_t u = 0; u < users; ++u) {
        const std::size_t s = shard_of_user(u, users, shards);
        EXPECT_TRUE(ranges[s].contains(u)) << "user " << u << " shard " << s;
      }
    }
  }
}

TEST(Partition, MoreShardsThanUsersYieldsEmptyShards) {
  // Note the empty shards are interleaved by the floor rule, not trailing.
  const auto ranges = partition_users(2, 5);
  ASSERT_EQ(ranges.size(), 5u);
  std::size_t nonempty = 0;
  for (const auto& r : ranges) nonempty += r.empty() ? 0 : 1;
  EXPECT_EQ(nonempty, 2u);
  EXPECT_THROW(partition_users(1, 0), std::invalid_argument);
}

// --- merge contract ---------------------------------------------------------

core::OpRecord record_at(double t, std::uint32_t user, std::uint64_t file_id) {
  core::OpRecord r;
  r.issue_time_us = t;
  r.user = user;
  r.file_id = file_id;
  return r;
}

TEST(Merge, OrdersByTimeThenUserWithStablePerUserOrder) {
  std::vector<core::UsageLog> per_user(3);
  // User 0: two records at t=5 (ids 1 then 2 — must stay in that order).
  per_user[0].append(record_at(5.0, 0, 1));
  per_user[0].append(record_at(5.0, 0, 2));
  // User 1: one earlier, one tying user 0's t=5.
  per_user[1].append(record_at(1.0, 1, 3));
  per_user[1].append(record_at(5.0, 1, 4));
  // User 2: ties user 1's t=1 — user index breaks the tie.
  per_user[2].append(record_at(1.0, 2, 5));

  const core::UsageLog merged = merge_user_logs(std::move(per_user));
  ASSERT_EQ(merged.size(), 5u);
  std::vector<std::uint64_t> ids;
  for (const auto& r : merged.records()) ids.push_back(r.file_id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{3, 5, 1, 2, 4}));
  EXPECT_TRUE(is_merge_ordered(merged));
}

TEST(Merge, DetectsDisorder) {
  core::UsageLog log;
  log.append(record_at(2.0, 0, 1));
  log.append(record_at(1.0, 0, 2));
  EXPECT_FALSE(is_merge_ordered(log));
  core::UsageLog tie;
  tie.append(record_at(1.0, 3, 1));
  tie.append(record_at(1.0, 2, 2));
  EXPECT_FALSE(is_merge_ordered(tie));
}

// --- the headline invariance ------------------------------------------------

RunnerConfig base_config(std::size_t users, std::size_t shards, std::size_t threads) {
  RunnerConfig config;
  config.num_users = users;
  config.shards = shards;
  config.threads = threads;
  config.seed = 2024;
  config.usim.sessions_per_user = 3;
  config.population = core::mixed_population(0.5);
  return config;
}

void expect_stats_identical(const RunnerStats& a, const RunnerStats& b) {
  EXPECT_EQ(a.ops(), b.ops());
  EXPECT_EQ(a.bytes_moved(), b.bytes_moved());
  // Bit-identical floating point: the merge fold is a fixed reduction
  // sequence in user order, so these are exact equalities, not tolerances.
  EXPECT_EQ(a.response_us().mean(), b.response_us().mean());
  EXPECT_EQ(a.response_us().variance(), b.response_us().variance());
  EXPECT_EQ(a.response_us().min(), b.response_us().min());
  EXPECT_EQ(a.response_us().max(), b.response_us().max());
  EXPECT_EQ(a.access_size().mean(), b.access_size().mean());
  EXPECT_EQ(a.access_size().variance(), b.access_size().variance());
  EXPECT_EQ(a.response_per_byte_us(), b.response_per_byte_us());
  EXPECT_EQ(a.response_histogram().counts(), b.response_histogram().counts());
  EXPECT_EQ(a.response_histogram().total(), b.response_histogram().total());
}

TEST(ShardedRunner, ShardCountNeverChangesMergedResults) {
  ShardedRunner one(base_config(6, 1, 1));
  const RunnerResult r1 = one.run();
  ASSERT_GT(r1.total_ops, 0u);
  EXPECT_TRUE(is_merge_ordered(r1.log));

  for (std::size_t shards : {2u, 3u, 6u}) {
    ShardedRunner many(base_config(6, shards, 2));
    const RunnerResult rk = many.run();
    // Bit-identical merged usage log, FIFO tie-break order included.
    EXPECT_EQ(rk.log.serialize(), r1.log.serialize()) << shards << " shards";
    expect_stats_identical(rk.stats, r1.stats);
    EXPECT_EQ(rk.total_ops, r1.total_ops);
    EXPECT_EQ(rk.sessions_completed, r1.sessions_completed);
    EXPECT_EQ(rk.max_simulated_us, r1.max_simulated_us);
  }
}

TEST(ShardedRunner, ThreadCountNeverChangesMergedResults) {
  ShardedRunner serial(base_config(5, 5, 1));
  const RunnerResult r1 = serial.run();
  ShardedRunner parallel(base_config(5, 5, 4));
  const RunnerResult r4 = parallel.run();
  EXPECT_EQ(r4.log.serialize(), r1.log.serialize());
  expect_stats_identical(r4.stats, r1.stats);
}

TEST(ShardedRunner, DrawBatchKeepsShardAndThreadInvariance) {
  // draw_batch > 1 changes which random sequence each user realises, but the
  // per-user streams still refill at fixed points in that user's own
  // timeline — so the shard/thread invariance of the merge must be as
  // bit-exact as at draw_batch = 1.
  auto batched = [](std::size_t shards, std::size_t threads) {
    RunnerConfig config = base_config(6, shards, threads);
    config.usim.draw_batch = 8;
    return config;
  };
  ShardedRunner one(batched(1, 1));
  const RunnerResult r1 = one.run();
  ASSERT_GT(r1.total_ops, 0u);
  for (std::size_t shards : {2u, 6u}) {
    ShardedRunner many(batched(shards, 4));
    const RunnerResult rk = many.run();
    EXPECT_EQ(rk.log.serialize(), r1.log.serialize()) << shards << " shards";
    expect_stats_identical(rk.stats, r1.stats);
  }
}

TEST(ShardedRunner, TimestampTiesBreakByUserIndex) {
  RunnerConfig config = base_config(4, 2, 2);
  // Zero-think users: every user's first call issues at exactly the
  // constant inter-session gap on its own clock, forcing cross-user
  // timestamp ties in the merged log.
  config.population.groups.clear();
  config.population.groups.push_back({core::extremely_heavy_user(), 1.0});
  ShardedRunner run(std::move(config));
  const RunnerResult result = run.run();
  EXPECT_TRUE(is_merge_ordered(result.log));
  // Ties must appear in ascending user order (is_merge_ordered verifies);
  // check the tie case is actually exercised.
  bool saw_cross_user_tie = false;
  const auto& records = result.log.records();
  for (std::size_t i = 1; i < records.size() && !saw_cross_user_tie; ++i) {
    saw_cross_user_tie = records[i].issue_time_us == records[i - 1].issue_time_us &&
                         records[i].user != records[i - 1].user;
  }
  EXPECT_TRUE(saw_cross_user_tie);
}

TEST(ShardedRunner, MatchesDirectSingleUserSimulation) {
  // One user through the runner == the same universe built by hand: the
  // range path is the plain path, not a parallel-only approximation.
  const std::uint64_t seed = 77;
  RunnerConfig config = base_config(1, 1, 1);
  config.seed = seed;
  ShardedRunner run(config);
  const RunnerResult result = run.run();

  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsModel nfs(simulation);
  core::FscConfig fsc_config;
  fsc_config.num_users = 1;
  fsc_config.seed = seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig usim_config;
  usim_config.num_users = 1;
  usim_config.sessions_per_user = 3;
  usim_config.seed = seed;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, core::mixed_population(0.5),
                           usim_config);
  usim.run();

  EXPECT_EQ(result.log.serialize(), usim.log().serialize());
  EXPECT_EQ(result.max_simulated_us, simulation.now());
}

TEST(ShardedRunner, LogFreeRunsStillProduceMergedAggregates) {
  RunnerConfig config = base_config(4, 2, 2);
  config.collect_log = false;
  ShardedRunner run(config);
  const RunnerResult result = run.run();
  EXPECT_TRUE(result.log.empty());
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_EQ(result.stats.ops(), result.total_ops);
  EXPECT_GT(result.stats.bytes_moved(), 0u);
  EXPECT_GT(result.stats.response_per_byte_us(), 0.0);
  EXPECT_EQ(result.stats.response_histogram().total(), result.total_ops);

  // And the aggregates equal those of a log-collecting run.
  ShardedRunner logged(base_config(4, 2, 2));
  expect_stats_identical(result.stats, logged.run().stats);
}

TEST(ShardedRunner, StatsAgreeWithAnalyzerOnTheMergedLog) {
  ShardedRunner run(base_config(3, 3, 2));
  const RunnerResult result = run.run();
  const core::UsageAnalyzer analyzer(result.log);
  EXPECT_EQ(result.stats.response_us().count(), analyzer.response_stats().count());
  EXPECT_EQ(result.stats.access_size().count(), analyzer.access_size_stats().count());
  // Different floating-point fold order (per-user vs merged-log scan):
  // agreement is near, not bitwise.
  EXPECT_NEAR(result.stats.response_us().mean(), analyzer.response_stats().mean(), 1e-6);
  EXPECT_NEAR(result.stats.response_per_byte_us(), analyzer.response_per_byte_us(), 1e-9);
}

TEST(ShardedRunner, PopulationTypesFollowGlobalIndex) {
  // With a 50/50 mix over 4 users, largest-remainder apportionment fixes
  // which global user gets which type; sharding must not re-apportion
  // within shards (a 2-shard run would otherwise give each shard its own
  // 1+1 split of a fresh 2-user population).
  RunnerConfig config = base_config(4, 4, 2);
  ShardedRunner sharded(config);
  const RunnerResult sharded_result = sharded.run();
  ShardedRunner whole(base_config(4, 1, 1));
  const RunnerResult whole_result = whole.run();
  EXPECT_EQ(sharded_result.log.serialize(), whole_result.log.serialize());
  std::set<std::uint32_t> users_seen;
  for (const auto& r : sharded_result.log.records()) users_seen.insert(r.user);
  EXPECT_EQ(users_seen.size(), 4u);
}

TEST(ShardedRunner, ValidatesConfigurationAndRunsOnce) {
  RunnerConfig no_users;
  no_users.num_users = 0;
  EXPECT_THROW(ShardedRunner(std::move(no_users)), std::invalid_argument);
  RunnerConfig no_shards;
  no_shards.shards = 0;
  EXPECT_THROW(ShardedRunner(std::move(no_shards)), std::invalid_argument);
  ShardedRunner run(base_config(1, 1, 1));
  run.run();
  EXPECT_THROW(run.run(), std::logic_error);
  EXPECT_THROW(model_factory_by_name("afs"), std::invalid_argument);
}

TEST(ShardedRunner, ShardReportsCoverAllUsersAndOps) {
  ShardedRunner run(base_config(6, 3, 2));
  const RunnerResult result = run.run();
  ASSERT_EQ(result.shards.size(), 3u);
  std::uint64_t ops = 0;
  std::size_t users = 0;
  for (const auto& s : result.shards) {
    ops += s.ops;
    users += s.range.size();
    EXPECT_GT(s.events, 0u);
  }
  EXPECT_EQ(ops, result.total_ops);
  EXPECT_EQ(users, 6u);
}

// --- streaming spill + checkpoint/resume ------------------------------------

// Fresh spool directory per test (and per configuration within a test, when
// runs must not see each other's checkpoints).
std::string fresh_spool(const std::string& tag) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / ("wlgen_spool_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

RunnerConfig spill_config(std::size_t users, std::size_t shards, std::size_t threads,
                          const std::string& spool, std::size_t buffer_records = 32) {
  RunnerConfig config = base_config(users, shards, threads);
  config.spill.enabled = true;
  config.spill.spool_dir = spool;
  config.spill.buffer_records = buffer_records;  // small: several runs per shard
  return config;
}

TEST(ShardedRunnerSpill, MatchesInMemoryLogByteForByteAcrossShardsAndThreads) {
  ShardedRunner reference(base_config(6, 1, 1));
  const RunnerResult in_memory = reference.run();
  ASSERT_FALSE(in_memory.log.empty());

  for (std::size_t shards : {1u, 2u, 3u}) {
    for (std::size_t threads : {1u, 4u}) {
      const std::string spool =
          fresh_spool("s" + std::to_string(shards) + "t" + std::to_string(threads));
      ShardedRunner spilled(spill_config(6, shards, threads, spool));
      const RunnerResult result = spilled.run();

      // The in-RAM log stays empty; the merged stream lives behind the
      // reader and carries the exact same bytes, tie-break order included.
      EXPECT_TRUE(result.log.empty());
      ASSERT_FALSE(result.spilled_runs.empty());
      auto reader = result.open_log_reader();
      EXPECT_EQ(core::materialize(*reader).serialize(), in_memory.log.serialize())
          << shards << " shards, " << threads << " threads";

      expect_stats_identical(result.stats, in_memory.stats);
      EXPECT_EQ(result.total_ops, in_memory.total_ops);
      EXPECT_EQ(result.max_simulated_us, in_memory.max_simulated_us);
      EXPECT_TRUE(result.response_sketch == in_memory.response_sketch);
      std::filesystem::remove_all(spool);
    }
  }
}

TEST(ShardedRunnerSpill, HandlesMoreShardsThanUsers) {
  // Empty shards produce no runs and no records; the merge must not invent
  // or drop anything.
  const std::string spool = fresh_spool("empty_shards");
  ShardedRunner spilled(spill_config(2, 5, 2, spool));
  const RunnerResult result = spilled.run();
  ShardedRunner reference(base_config(2, 1, 1));
  const RunnerResult in_memory = reference.run();
  auto reader = result.open_log_reader();
  EXPECT_EQ(core::materialize(*reader).serialize(), in_memory.log.serialize());
  std::filesystem::remove_all(spool);
}

TEST(ShardedRunnerSpill, StreamSatisfiesMergeContractViaReader) {
  const std::string spool = fresh_spool("contract");
  ShardedRunner spilled(spill_config(5, 3, 2, spool));
  const RunnerResult result = spilled.run();
  auto reader = result.open_log_reader();
  EXPECT_TRUE(is_merge_ordered(*reader));
  std::filesystem::remove_all(spool);
}

TEST(ShardedRunnerSpill, SketchIsInvariantAcrossEverything) {
  // One sketch per shard, integer merge: bit-identical buckets for every
  // (shards, threads, spill) combination — including the in-memory path.
  ShardedRunner reference(base_config(6, 1, 1));
  const RunnerResult base = reference.run();
  ASSERT_GT(base.response_sketch.count(), 0u);
  EXPECT_EQ(base.response_sketch.count(), base.total_ops);

  ShardedRunner memory_many(base_config(6, 3, 4));
  EXPECT_TRUE(memory_many.run().response_sketch == base.response_sketch);

  const std::string spool = fresh_spool("sketch");
  ShardedRunner spilled(spill_config(6, 3, 4, spool));
  EXPECT_TRUE(spilled.run().response_sketch == base.response_sketch);
  std::filesystem::remove_all(spool);
}

TEST(ShardedRunnerSpill, CheckpointResumeIsBitIdentical) {
  const std::string spool = fresh_spool("resume");
  RunnerConfig first_config = spill_config(6, 3, 2, spool);
  first_config.spill.checkpoint = true;
  ShardedRunner first(first_config);
  const RunnerResult original = first.run();
  EXPECT_EQ(original.checkpoints_written, 3u);
  EXPECT_EQ(original.shards_resumed, 0u);
  const std::string original_log = core::materialize(*original.open_log_reader()).serialize();

  // Full resume: every shard restored from its checkpoint, nothing re-run,
  // and the result — log bytes, stats fold, sketch — is bit-identical.
  RunnerConfig resume_config = spill_config(6, 3, 2, spool);
  resume_config.spill.checkpoint = true;
  resume_config.spill.resume = true;
  ShardedRunner resumed(resume_config);
  const RunnerResult restored = resumed.run();
  EXPECT_EQ(restored.shards_resumed, 3u);
  EXPECT_EQ(core::materialize(*restored.open_log_reader()).serialize(), original_log);
  expect_stats_identical(restored.stats, original.stats);
  EXPECT_EQ(restored.total_ops, original.total_ops);
  EXPECT_EQ(restored.sessions_completed, original.sessions_completed);
  EXPECT_EQ(restored.max_simulated_us, original.max_simulated_us);
  EXPECT_TRUE(restored.response_sketch == original.response_sketch);

  // Partial resume: delete one shard's checkpoint (simulating an interrupt
  // between shard completions); that shard re-runs, the rest restore, and
  // the merged result is still bit-identical.
  std::filesystem::remove(checkpoint_path(spool, 1));
  ShardedRunner partial(resume_config);
  const RunnerResult repaired = partial.run();
  EXPECT_EQ(repaired.shards_resumed, 2u);
  EXPECT_EQ(repaired.checkpoints_written, 1u);
  EXPECT_EQ(core::materialize(*repaired.open_log_reader()).serialize(), original_log);
  expect_stats_identical(repaired.stats, original.stats);
  EXPECT_TRUE(repaired.response_sketch == original.response_sketch);
  std::filesystem::remove_all(spool);
}

TEST(ShardedRunnerSpill, ResumeRejectsAForeignFingerprint) {
  const std::string spool = fresh_spool("fingerprint");
  RunnerConfig first_config = spill_config(4, 2, 1, spool);
  first_config.spill.checkpoint = true;
  ShardedRunner first(first_config);
  first.run();

  // Same spool, different seed: the checkpoints describe a different
  // record stream and silently reusing them would corrupt the result.
  RunnerConfig other = spill_config(4, 2, 1, spool);
  other.spill.checkpoint = true;
  other.spill.resume = true;
  other.seed = 777;
  ShardedRunner resumed(other);
  EXPECT_THROW(resumed.run(), std::runtime_error);
  std::filesystem::remove_all(spool);
}

TEST(ShardedRunnerSpill, ValidatesSpillConfiguration) {
  RunnerConfig no_spool = base_config(1, 1, 1);
  no_spool.spill.enabled = true;
  EXPECT_THROW(ShardedRunner(std::move(no_spool)), std::invalid_argument);

  RunnerConfig no_log = spill_config(1, 1, 1, fresh_spool("v1"));
  no_log.collect_log = false;
  EXPECT_THROW(ShardedRunner(std::move(no_log)), std::invalid_argument);

  RunnerConfig ckpt_without_spill = base_config(1, 1, 1);
  ckpt_without_spill.spill.checkpoint = true;
  EXPECT_THROW(ShardedRunner(std::move(ckpt_without_spill)), std::invalid_argument);

  RunnerConfig resume_without_ckpt = spill_config(1, 1, 1, fresh_spool("v2"));
  resume_without_ckpt.spill.resume = true;
  EXPECT_THROW(ShardedRunner(std::move(resume_without_ckpt)), std::invalid_argument);

  RunnerConfig zero_buffer = spill_config(1, 1, 1, fresh_spool("v3"), 0);
  EXPECT_THROW(ShardedRunner(std::move(zero_buffer)), std::invalid_argument);
}

// --- contended runner -------------------------------------------------------

ContendedConfig contended_config(std::vector<std::size_t> points, std::size_t replications,
                                 std::size_t threads) {
  ContendedConfig config;
  config.user_points = std::move(points);
  config.replications = replications;
  config.threads = threads;
  config.seed = 2026;
  config.usim.sessions_per_user = 2;
  config.population = core::mixed_population(0.5);
  return config;
}

void expect_points_identical(const ContendedResult& a, const ContendedResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const ContendedPoint& x = a.points[p];
    const ContendedPoint& y = b.points[p];
    EXPECT_EQ(x.users, y.users);
    EXPECT_EQ(x.total_ops, y.total_ops);
    EXPECT_EQ(x.sessions_completed, y.sessions_completed);
    // Bit-identical floating point: the fold is a fixed (point, replication)
    // reduction sequence, so these are exact equalities, not tolerances.
    EXPECT_EQ(x.replication_levels, y.replication_levels);
    EXPECT_EQ(x.response_per_byte.mean, y.response_per_byte.mean);
    EXPECT_EQ(x.response_per_byte.half_width, y.response_per_byte.half_width);
    EXPECT_EQ(x.stats.ops(), y.stats.ops());
    EXPECT_EQ(x.stats.bytes_moved(), y.stats.bytes_moved());
    EXPECT_EQ(x.stats.response_us().mean(), y.stats.response_us().mean());
    EXPECT_EQ(x.stats.response_us().variance(), y.stats.response_us().variance());
    EXPECT_EQ(x.stats.response_per_byte_us(), y.stats.response_per_byte_us());
    EXPECT_EQ(x.stats.response_histogram().counts(), y.stats.response_histogram().counts());
  }
}

TEST(ContendedRunner, ThreadCountNeverChangesMergedResults) {
  ContendedRunner serial(contended_config({1, 2, 3}, 2, 1));
  const ContendedResult r1 = serial.run();
  ASSERT_GT(r1.total_ops, 0u);
  for (std::size_t threads : {2u, 8u}) {
    ContendedRunner parallel(contended_config({1, 2, 3}, 2, threads));
    const ContendedResult rt = parallel.run();
    expect_points_identical(r1, rt);
    EXPECT_EQ(r1.total_ops, rt.total_ops);
  }
}

TEST(ContendedRunner, ReplicationBatchingNeverChangesEarlierReplications) {
  // replication_seed depends only on (root seed, replication index), so a
  // 4-replication run must reproduce a 2-replication run's levels as its
  // prefix — adding replications refines the CI without rewriting history.
  ContendedRunner two(contended_config({2, 3}, 2, 2));
  ContendedRunner four(contended_config({2, 3}, 4, 2));
  const ContendedResult r2 = two.run();
  const ContendedResult r4 = four.run();
  for (std::size_t p = 0; p < r2.points.size(); ++p) {
    ASSERT_EQ(r4.points[p].replication_levels.size(), 4u);
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_EQ(r2.points[p].replication_levels[r], r4.points[p].replication_levels[r]);
    }
  }
}

TEST(ContendedRunner, SweepPointSubsetsReproduceExactly) {
  // Per-point results depend only on (seed, users, replication) — running a
  // point alone or inside a larger sweep is indistinguishable.
  ContendedRunner sweep(contended_config({1, 2, 4}, 2, 2));
  ContendedRunner alone(contended_config({2}, 2, 1));
  const ContendedResult full = sweep.run();
  const ContendedResult single = alone.run();
  ASSERT_EQ(single.points.size(), 1u);
  EXPECT_EQ(full.points[1].replication_levels, single.points[0].replication_levels);
  EXPECT_EQ(full.points[1].stats.response_us().mean(),
            single.points[0].stats.response_us().mean());
  EXPECT_EQ(full.points[1].total_ops, single.points[0].total_ops);
}

TEST(ContendedRunner, MatchesDirectSharedMachineSimulation) {
  // One replication of an N-user point == the same contended universe built
  // by hand on the single-Simulation UserSimulator path: the runner
  // parallelises the paper experiment, it does not approximate it.
  const std::size_t users = 3;
  ContendedConfig config = contended_config({users}, 1, 1);
  const std::uint64_t seed = replication_seed(config.seed, 0);
  ContendedRunner run(config);
  const ContendedResult result = run.run();

  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsModel nfs(simulation);
  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig usim_config;
  usim_config.num_users = users;
  usim_config.sessions_per_user = 2;
  usim_config.seed = seed;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, core::mixed_population(0.5),
                           usim_config);
  usim.run();

  const core::UsageAnalyzer analyzer(usim.log());
  const ContendedPoint& point = result.points.at(0);
  EXPECT_EQ(point.total_ops, usim.total_ops());
  EXPECT_EQ(point.sessions_completed, usim.sessions_completed());
  EXPECT_EQ(point.stats.ops(), analyzer.response_stats().count());
  EXPECT_NEAR(point.stats.response_per_byte_us(), analyzer.response_per_byte_us(), 1e-9);
}

TEST(ContendedRunner, ReplicationSeedIsAPureFunctionOfRootAndIndex) {
  EXPECT_EQ(replication_seed(7, 0), replication_seed(7, 0));
  EXPECT_NE(replication_seed(7, 0), replication_seed(7, 1));
  EXPECT_NE(replication_seed(7, 0), replication_seed(8, 0));
}

TEST(ContendedRunner, CrossReplicationCiIsPopulated) {
  ContendedRunner run(contended_config({2}, 3, 2));
  const ContendedResult result = run.run();
  const ContendedPoint& point = result.points.at(0);
  ASSERT_EQ(point.response_per_byte.n, 3u);
  EXPECT_GT(point.response_per_byte.mean, 0.0);
  EXPECT_GT(point.response_per_byte.half_width, 0.0);
  // The pooled level and the replication-mean level agree loosely (they are
  // different estimators of the same quantity).
  EXPECT_NEAR(point.stats.response_per_byte_us(), point.response_per_byte.mean,
              point.response_per_byte.mean);
  // Execution accounting covers the whole (point x replication) grid.
  ASSERT_EQ(result.replications.size(), 3u);
  for (const auto& rep : result.replications) {
    EXPECT_GT(rep.ops, 0u);
    EXPECT_GT(rep.events, 0u);
  }
}

TEST(ContendedRunner, ValidatesConfigurationAndRunsOnce) {
  ContendedConfig no_points;
  EXPECT_THROW(ContendedRunner{no_points}, std::invalid_argument);
  ContendedConfig zero_user = contended_config({1, 0}, 1, 1);
  EXPECT_THROW(ContendedRunner{zero_user}, std::invalid_argument);
  ContendedConfig no_reps = contended_config({1}, 0, 1);
  EXPECT_THROW(ContendedRunner{no_reps}, std::invalid_argument);
  ContendedRunner run(contended_config({1}, 1, 1));
  run.run();
  EXPECT_THROW(run.run(), std::logic_error);
}

}  // namespace
}  // namespace wlgen::runner
