// Tests for the Usage Analyzer and the baseline (benchmark-style) workloads.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/baseline.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"

namespace wlgen::core {
namespace {

OpRecord record(std::uint32_t user, std::uint32_t session, fsmodel::FsOpType op,
                std::uint64_t file, std::uint64_t bytes, std::uint64_t file_size,
                double issue = 0.0, double response = 10.0) {
  OpRecord r;
  r.user = user;
  r.session = session;
  r.op = op;
  r.file_id = file;
  r.requested_bytes = bytes;
  r.actual_bytes = bytes;
  r.file_size = file_size;
  r.issue_time_us = issue;
  r.response_us = response;
  r.category = FileCategory{FileType::regular, FileOwner::user, UseMode::read_only};
  return r;
}

TEST(Analyzer, SessionAggregatesMatchHandComputation) {
  UsageLog log;
  // Session (0,0): file 1 (size 1000) read 600+600 bytes; file 2 (size 500) read 250.
  log.append(record(0, 0, fsmodel::FsOpType::open, 1, 0, 1000, 0.0, 5.0));
  log.append(record(0, 0, fsmodel::FsOpType::read, 1, 600, 1000, 10.0, 20.0));
  log.append(record(0, 0, fsmodel::FsOpType::read, 1, 600, 1000, 40.0, 20.0));
  log.append(record(0, 0, fsmodel::FsOpType::open, 2, 0, 500, 70.0, 5.0));
  log.append(record(0, 0, fsmodel::FsOpType::read, 2, 250, 500, 80.0, 20.0));
  log.append(record(0, 0, fsmodel::FsOpType::close, 1, 0, 1000, 110.0, 5.0));

  const UsageAnalyzer analyzer(log);
  ASSERT_EQ(analyzer.sessions().size(), 1u);
  const SessionSummary& s = analyzer.sessions()[0];
  EXPECT_EQ(s.ops, 6u);
  EXPECT_EQ(s.bytes_accessed, 1450u);
  EXPECT_EQ(s.files_referenced, 2u);
  EXPECT_DOUBLE_EQ(s.total_file_bytes, 1500.0);
  EXPECT_DOUBLE_EQ(s.mean_file_size, 750.0);
  EXPECT_DOUBLE_EQ(s.access_per_byte, 1450.0 / 1500.0);
  EXPECT_DOUBLE_EQ(s.start_us, 0.0);
  EXPECT_DOUBLE_EQ(s.end_us, 115.0);
}

TEST(Analyzer, SeparatesSessions) {
  UsageLog log;
  log.append(record(0, 0, fsmodel::FsOpType::read, 1, 100, 1000));
  log.append(record(0, 1, fsmodel::FsOpType::read, 1, 100, 1000));
  log.append(record(1, 0, fsmodel::FsOpType::read, 2, 100, 1000));
  const UsageAnalyzer analyzer(log);
  EXPECT_EQ(analyzer.sessions().size(), 3u);
}

TEST(Analyzer, ResponsePerByteIsAllResponseOverDataBytes) {
  UsageLog log;
  log.append(record(0, 0, fsmodel::FsOpType::read, 1, 100, 1000, 0.0, 300.0));
  log.append(record(0, 0, fsmodel::FsOpType::read, 1, 300, 1000, 0.0, 100.0));
  // The open's response counts toward the numerator (it is part of the cost
  // of accessing those bytes) but contributes no bytes.
  log.append(record(0, 0, fsmodel::FsOpType::open, 1, 0, 1000, 0.0, 1000.0));
  const UsageAnalyzer analyzer(log);
  EXPECT_DOUBLE_EQ(analyzer.response_per_byte_us(), (300.0 + 100.0 + 1000.0) / 400.0);
}

TEST(Analyzer, PerOpStatsSplitsByType) {
  UsageLog log;
  log.append(record(0, 0, fsmodel::FsOpType::read, 1, 100, 1000, 0.0, 10.0));
  log.append(record(0, 0, fsmodel::FsOpType::write, 1, 200, 1000, 0.0, 20.0));
  log.append(record(0, 0, fsmodel::FsOpType::open, 1, 0, 1000, 0.0, 30.0));
  const auto stats = UsageAnalyzer(log).per_op_stats();
  EXPECT_DOUBLE_EQ(stats.at(fsmodel::FsOpType::read).access_size.mean(), 100.0);
  EXPECT_DOUBLE_EQ(stats.at(fsmodel::FsOpType::write).access_size.mean(), 200.0);
  EXPECT_DOUBLE_EQ(stats.at(fsmodel::FsOpType::open).response_us.mean(), 30.0);
  EXPECT_EQ(stats.at(fsmodel::FsOpType::open).access_size.count(), 0u);
}

TEST(Analyzer, HistogramsCoverSessions) {
  UsageLog log;
  for (std::uint32_t s = 0; s < 20; ++s) {
    log.append(record(0, s, fsmodel::FsOpType::read, 1, 100 * (s + 1), 1000));
  }
  const UsageAnalyzer analyzer(log);
  const auto h = analyzer.session_access_per_byte_histogram(10);
  std::size_t total = 0;
  for (double c : h.counts()) total += static_cast<std::size_t>(c);
  EXPECT_EQ(total, 20u);
  EXPECT_NO_THROW(analyzer.session_file_size_histogram(10));
  EXPECT_NO_THROW(analyzer.session_files_histogram(10));
}

TEST(Analyzer, PerCategoryUsageGroupsCorrectly) {
  UsageLog log;
  OpRecord notes = record(0, 0, fsmodel::FsOpType::read, 5, 400, 800);
  notes.category = FileCategory{FileType::regular, FileOwner::notes, UseMode::read_only};
  log.append(notes);
  log.append(record(0, 0, fsmodel::FsOpType::read, 1, 100, 1000));
  log.append(record(0, 1, fsmodel::FsOpType::read, 1, 100, 1000));

  const auto usage = UsageAnalyzer(log).per_category_usage();
  ASSERT_TRUE(usage.count("REG/NOTES/RDONLY"));
  ASSERT_TRUE(usage.count("REG/USER/RDONLY"));
  EXPECT_DOUBLE_EQ(usage.at("REG/NOTES/RDONLY").access_per_byte.mean(), 0.5);
  EXPECT_DOUBLE_EQ(usage.at("REG/NOTES/RDONLY").fraction_sessions_touching, 0.5);
  EXPECT_DOUBLE_EQ(usage.at("REG/USER/RDONLY").fraction_sessions_touching, 1.0);
}

TEST(Analyzer, EmptyLogYieldsNoSessions) {
  UsageLog log;
  const UsageAnalyzer analyzer(log);
  EXPECT_TRUE(analyzer.sessions().empty());
  EXPECT_DOUBLE_EQ(analyzer.response_per_byte_us(), 0.0);
}

// ---------------------------------------------------------------------------
// Baselines.
// ---------------------------------------------------------------------------

TEST(Baseline, AndrewScriptPhasesRunInOrder) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  ScriptRunner runner(simulation, fsys, nfs);
  AndrewConfig config;
  config.directories = 2;
  config.files_per_directory = 3;
  const ScriptResult result = runner.run(make_andrew_script(config), andrew_phase_names());

  ASSERT_EQ(result.phase_us.size(), 6u);
  EXPECT_EQ(result.phase_names[2], "Copy");
  for (std::size_t i = 1; i < result.phase_us.size(); ++i) {
    EXPECT_GT(result.phase_us[i], 0.0) << result.phase_names[i];
  }
  // Copy moves the most bytes; it must dominate MakeDir.
  EXPECT_GT(result.phase_us[2], result.phase_us[1]);
  EXPECT_GT(result.ops, 50u);
  EXPECT_DOUBLE_EQ(result.total_us, simulation.now());

  // The simulated tree really exists.
  EXPECT_TRUE(fsys.exists("/andrew/d1/f2"));
  EXPECT_TRUE(fsys.exists("/andrew/d0/f0.o"));
  EXPECT_EQ(fsys.stat("/andrew/d1/f2").value().size, config.file_bytes);
}

TEST(Baseline, AndrewReadAllFasterWarmThanCopyPhase) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  ScriptRunner runner(simulation, fsys, nfs);
  const ScriptResult result = runner.run(make_andrew_script(AndrewConfig{}), andrew_phase_names());
  // ReadAll re-reads data the Copy phase pulled through the client cache.
  EXPECT_LT(result.phase_us[4], result.phase_us[2]);
}

TEST(Baseline, BuchholzUpdatesMasterInPlace) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::NfsModel nfs(simulation);
  ScriptRunner runner(simulation, fsys, nfs);
  BuchholzConfig config;
  config.master_records = 64;
  config.detail_records = 32;
  const ScriptResult result =
      runner.run(make_buchholz_script(config), buchholz_phase_names(config));

  ASSERT_EQ(result.phase_us.size(), 2u);
  EXPECT_GT(result.phase_us[1], 0.0);
  const auto st = fsys.stat("/buchholz/master").value();
  EXPECT_EQ(st.size, 64u * config.record_bytes);  // in-place: size unchanged
  // Setup wrote ceil(64*120 / 2048) = 4 blocks; each of 32 updates wrote once.
  EXPECT_EQ(st.write_ops, 4u + 32u);
}

TEST(Baseline, BuchholzPassesScaleWork) {
  sim::Simulation s1, s2;
  fs::SimulatedFileSystem f1, f2;
  fsmodel::NfsModel m1(s1), m2(s2);
  BuchholzConfig one;
  one.passes = 1;
  BuchholzConfig three;
  three.passes = 3;
  const auto r1 = ScriptRunner(s1, f1, m1).run(make_buchholz_script(one), buchholz_phase_names(one));
  const auto r3 =
      ScriptRunner(s2, f2, m2).run(make_buchholz_script(three), buchholz_phase_names(three));
  EXPECT_EQ(r3.phase_us.size(), 4u);
  EXPECT_GT(r3.ops, r1.ops * 2);
}

TEST(Baseline, ScriptRunnerRecordsLog) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsmodel::WholeFileCacheModel afs(simulation);
  ScriptRunner runner(simulation, fsys, afs);
  std::vector<ScriptOp> script = {
      {fsmodel::FsOpType::mkdir, "/d", 0, -1, 0},
      {fsmodel::FsOpType::creat, "/d/f", 0, -1, 0},
      {fsmodel::FsOpType::write, "/d/f", 100, -1, 0},
      {fsmodel::FsOpType::close, "/d/f", 0, -1, 0},
  };
  const ScriptResult result = runner.run(script, {"only"});
  EXPECT_EQ(result.ops, 4u);
  EXPECT_EQ(result.log.size(), 4u);
  EXPECT_EQ(result.log.records()[2].actual_bytes, 100u);
}

}  // namespace
}  // namespace wlgen::core
