// Unit tests for src/stats: Welford summaries, histograms, smoothing,
// KS / chi-square goodness-of-fit.

#include <gtest/gtest.h>

#include <cmath>

#include "dist/basic.h"
#include "stats/histogram.h"
#include "stats/smoothing.h"
#include "stats/summary.h"
#include "stats/tests.h"
#include "util/rng.h"

namespace wlgen::stats {
namespace {

TEST(RunningSummary, BasicMoments) {
  RunningSummary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningSummary, ThrowsOnEmpty) {
  RunningSummary s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.variance(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(RunningSummary, MergeMatchesCombinedStream) {
  util::RngStream rng(1, "merge");
  RunningSummary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningSummary, MergeWithEmpty) {
  RunningSummary a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(RunningSummary, MeanStdString) {
  RunningSummary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(s.mean_std_string(2), "2.00(1.00)");
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> data = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 2.5);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.counts()[4], 2.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(HistogramTest, EdgesAndCenters) {
  Histogram h(0.0, 4.0, 4);
  const auto edges = h.edges();
  ASSERT_EQ(edges.size(), 5u);
  EXPECT_DOUBLE_EQ(edges[0], 0.0);
  EXPECT_DOUBLE_EQ(edges[4], 4.0);
  EXPECT_DOUBLE_EQ(h.centers()[0], 0.5);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  util::RngStream rng(2, "hist");
  Histogram h(0.0, 50.0, 25);
  for (int i = 0; i < 5000; ++i) h.add(rng.uniform(0.0, 50.0));
  const auto density = h.density();
  double mass = 0.0;
  for (double d : density) mass += d * h.bin_width();
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(HistogramTest, FromDataSpansRange) {
  const auto h = Histogram::from_data({1.0, 2.0, 9.0}, 4);
  EXPECT_DOUBLE_EQ(h.low(), 1.0);
  EXPECT_DOUBLE_EQ(h.high(), 9.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_THROW(Histogram::from_data({}, 4), std::invalid_argument);
}

// All-equal data (a constant distribution, a single sample) must widen to
// the documented [lo, lo + 1) fallback instead of throwing on hi == lo, with
// every observation landing in bin 0.
TEST(HistogramTest, FromDataAllEqualWidensToUnitRange) {
  const auto h = Histogram::from_data({5.0, 5.0, 5.0}, 4);
  EXPECT_DOUBLE_EQ(h.low(), 5.0);
  EXPECT_DOUBLE_EQ(h.high(), 6.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.counts()[0], 3.0);
  for (std::size_t b = 1; b < h.bin_count(); ++b) EXPECT_DOUBLE_EQ(h.counts()[b], 0.0);

  const auto single = Histogram::from_data({-2.5}, 2);
  EXPECT_DOUBLE_EQ(single.low(), -2.5);
  EXPECT_DOUBLE_EQ(single.high(), -1.5);
  EXPECT_EQ(single.total(), 1u);
}

// --- cross-replication mean/CI (the contended runner's summary) -------------

TEST(MeanCiTest, MatchesStudentTByHand) {
  // {1,2,3}: mean 2, sample sd 1, t_{2, .975} = 4.303.
  const MeanCi ci = mean_confidence_interval({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_EQ(ci.n, 3u);
  EXPECT_NEAR(ci.half_width, 4.303 / std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(ci.lo(), ci.mean - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.hi(), ci.mean + ci.half_width);

  // Two samples: df = 1, t = 12.706; sample sd of {10, 14} is 2*sqrt(2).
  const MeanCi two = mean_confidence_interval({10.0, 14.0});
  EXPECT_DOUBLE_EQ(two.mean, 12.0);
  EXPECT_NEAR(two.half_width, 12.706 * 2.0 * std::sqrt(2.0) / std::sqrt(2.0), 1e-9);
}

TEST(MeanCiTest, ConfidenceLevelsOrderAndValidate) {
  const std::vector<double> data = {3.0, 5.0, 4.0, 6.0, 2.0};
  const MeanCi c90 = mean_confidence_interval(data, 0.90);
  const MeanCi c95 = mean_confidence_interval(data, 0.95);
  const MeanCi c99 = mean_confidence_interval(data, 0.99);
  EXPECT_LT(c90.half_width, c95.half_width);
  EXPECT_LT(c95.half_width, c99.half_width);
  EXPECT_DOUBLE_EQ(c90.mean, c95.mean);
  EXPECT_THROW(mean_confidence_interval(data, 0.50), std::invalid_argument);
  EXPECT_THROW(mean_confidence_interval({}, 0.95), std::invalid_argument);
}

TEST(MeanCiTest, SingleReplicationHasZeroWidth) {
  const MeanCi one = mean_confidence_interval({7.5});
  EXPECT_DOUBLE_EQ(one.mean, 7.5);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
  EXPECT_EQ(one.n, 1u);
  // An unsupported confidence is rejected even when n == 1.
  EXPECT_THROW(mean_confidence_interval({7.5}, 0.42), std::invalid_argument);
}

TEST(MeanCiTest, LargeSampleUsesNormalApproximation) {
  std::vector<double> data;
  for (int i = 0; i < 64; ++i) data.push_back(static_cast<double>(i % 8));
  const MeanCi ci = mean_confidence_interval(data);
  double mean = 0.0;
  for (double v : data) mean += v;
  mean /= 64.0;
  double ss = 0.0;
  for (double v : data) ss += (v - mean) * (v - mean);
  const double se = std::sqrt(ss / 63.0 / 64.0);
  EXPECT_NEAR(ci.half_width, 1.960 * se, 1e-12);
}

// Same-geometry merge must equal single-pass accumulation exactly — the
// sharded runner folds per-user histograms and relies on bin counts being
// integer-valued doubles (exact addition, any fold order).
TEST(HistogramTest, MergeEqualsSinglePassAccumulation) {
  util::RngStream rng(9, "hist-merge");
  Histogram whole(0.0, 10.0, 16);
  Histogram part_a(0.0, 10.0, 16);
  Histogram part_b(0.0, 10.0, 16);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-1.0, 12.0);  // exercises edge clamping too
    whole.add(v);
    (i % 2 == 0 ? part_a : part_b).add(v);
  }
  part_a.merge(part_b);
  EXPECT_EQ(part_a.counts(), whole.counts());
  EXPECT_EQ(part_a.total(), whole.total());
}

TEST(HistogramTest, MergeRejectsMismatchedGeometry) {
  Histogram base(0.0, 10.0, 16);
  EXPECT_THROW(base.merge(Histogram(0.0, 10.0, 8)), std::invalid_argument);
  EXPECT_THROW(base.merge(Histogram(0.0, 20.0, 16)), std::invalid_argument);
  EXPECT_THROW(base.merge(Histogram(1.0, 10.0, 16)), std::invalid_argument);
}

TEST(Smoothing, MovingAveragePreservesConstantSignal) {
  const std::vector<double> flat(10, 3.0);
  const auto out = moving_average(flat, 3);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Smoothing, MovingAverageReducesVariance) {
  util::RngStream rng(3, "smooth");
  std::vector<double> noisy;
  for (int i = 0; i < 200; ++i) noisy.push_back(rng.normal(0.0, 1.0));
  const auto smooth = moving_average(noisy, 9);
  const auto raw_summary = summarize(noisy);
  const auto smooth_summary = summarize(smooth);
  EXPECT_LT(smooth_summary.variance(), raw_summary.variance() * 0.5);
}

TEST(Smoothing, GaussianKernelMassConserving) {
  std::vector<double> spike(21, 0.0);
  spike[10] = 100.0;
  const auto out = gaussian_smooth(spike, 2.0);
  double mass = 0.0;
  for (double v : out) mass += v;
  EXPECT_NEAR(mass, 100.0, 0.5);
  EXPECT_LT(out[10], 100.0);
  EXPECT_GT(out[8], 0.0);
}

TEST(Smoothing, HistogramSmoothingKeepsTotalCount) {
  Histogram h(0.0, 10.0, 10);
  util::RngStream rng(4, "smooth-h");
  for (int i = 0; i < 1000; ++i) h.add(rng.exponential(2.0));
  for (const SmoothingKind kind : {SmoothingKind::moving_average, SmoothingKind::gaussian}) {
    const Histogram s = smooth_histogram(h, kind, 3.0);
    double before = 0.0, after = 0.0;
    for (double c : h.counts()) before += c;
    for (double c : s.counts()) after += c;
    EXPECT_NEAR(before, after, 1e-6);
  }
}

TEST(Smoothing, RejectsBadParameters) {
  EXPECT_THROW(moving_average({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(gaussian_smooth({1.0}, 0.0), std::invalid_argument);
}

TEST(Smoothing, MovingAverageRejectsEvenWindows) {
  // An even window used to be bumped to the next odd size silently, so the
  // caller's "window" lied about the kernel actually applied.
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(moving_average(values, 2), std::invalid_argument);
  EXPECT_THROW(moving_average(values, 4), std::invalid_argument);
  EXPECT_NO_THROW(moving_average(values, 1));
  EXPECT_NO_THROW(moving_average(values, 3));
}

TEST(Smoothing, HistogramRejectsFractionalOrEvenMovingAverageWindow) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  // 3.7 used to be truncated to a 3-bin window silently.
  EXPECT_THROW(smooth_histogram(h, SmoothingKind::moving_average, 3.7), std::invalid_argument);
  EXPECT_THROW(smooth_histogram(h, SmoothingKind::moving_average, 4.0), std::invalid_argument);
  EXPECT_THROW(smooth_histogram(h, SmoothingKind::moving_average, 0.5), std::invalid_argument);
  // Fractional bandwidths are the *intended* gaussian contract.
  EXPECT_NO_THROW(smooth_histogram(h, SmoothingKind::gaussian, 0.75));
}

TEST(Smoothing, TotalMassPreservedWithMassConcentratedAtHistogramEdges) {
  // Edge regression for both smoothing kinds: a shrunken / renormalised edge
  // kernel plus the final renormalisation must keep the total count exact
  // even when every observation sits in the first or last bin.
  for (const bool at_high_edge : {false, true}) {
    Histogram h(0.0, 10.0, 12);
    for (int i = 0; i < 500; ++i) h.add(at_high_edge ? 9.99 : 0.0);
    h.add(at_high_edge ? 0.0 : 9.99);  // a token count in the opposite bin
    for (const SmoothingKind kind : {SmoothingKind::moving_average, SmoothingKind::gaussian}) {
      const Histogram s = smooth_histogram(h, kind, kind == SmoothingKind::gaussian ? 1.5 : 5.0);
      double before = 0.0, after = 0.0;
      for (double c : h.counts()) before += c;
      for (double c : s.counts()) after += c;
      EXPECT_NEAR(before, after, 1e-9);
      EXPECT_EQ(s.bin_count(), h.bin_count());
    }
  }
}

TEST(KsTest, AcceptsMatchingDistribution) {
  util::RngStream rng(5, "ks");
  dist::ExponentialDistribution d(100.0);
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) data.push_back(d.sample(rng));
  const TestResult r = ks_test(data, d);
  EXPECT_LT(r.statistic, 0.05);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, RejectsWrongDistribution) {
  util::RngStream rng(5, "ks2");
  dist::ExponentialDistribution actual(100.0);
  dist::ExponentialDistribution claimed(200.0);
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) data.push_back(actual.sample(rng));
  const TestResult r = ks_test(data, claimed);
  EXPECT_GT(r.statistic, 0.1);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(KsTest, TwoSampleSameSourceAccepted) {
  util::RngStream rng(6, "ks3");
  std::vector<double> a, b;
  for (int i = 0; i < 1500; ++i) a.push_back(rng.gamma(2.0, 5.0));
  for (int i = 0; i < 1500; ++i) b.push_back(rng.gamma(2.0, 5.0));
  const TestResult r = ks_test_two_sample(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, TwoSampleDifferentSourcesRejected) {
  util::RngStream rng(6, "ks4");
  std::vector<double> a, b;
  for (int i = 0; i < 1500; ++i) a.push_back(rng.gamma(2.0, 5.0));
  for (int i = 0; i < 1500; ++i) b.push_back(rng.gamma(2.0, 9.0));
  const TestResult r = ks_test_two_sample(a, b);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(KolmogorovQ, KnownBehaviour) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_GT(kolmogorov_q(0.5), kolmogorov_q(1.0));
  EXPECT_LT(kolmogorov_q(2.0), 0.001);
}

TEST(ChiSquare, AcceptsMatchingCounts) {
  const std::vector<double> expected = {100, 100, 100, 100};
  const std::vector<double> observed = {105, 95, 102, 98};
  const TestResult r = chi_square_test(observed, expected);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(ChiSquare, RejectsBadCounts) {
  const std::vector<double> expected = {100, 100, 100, 100};
  const std::vector<double> observed = {160, 40, 150, 50};
  const TestResult r = chi_square_test(observed, expected);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquare, PoolsSparseBins) {
  // Bins with tiny expectations must be pooled, not blow up the statistic.
  const std::vector<double> expected = {3.0, 3.0, 200.0, 3.0, 3.0};
  const std::vector<double> observed = {4, 3, 199, 2, 4};
  const TestResult r = chi_square_test(observed, expected);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(ChiSquare, AllSparseBinsCollapseToError) {
  // When everything pools into one bin there is no test to run.
  EXPECT_THROW(chi_square_test({1, 1}, {0.5, 0.5}), std::invalid_argument);
}

TEST(ChiSquare, RejectsMismatchedInput) {
  EXPECT_THROW(chi_square_test({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(chi_square_test({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace wlgen::stats
