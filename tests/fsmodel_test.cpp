// Unit tests for src/net and src/fsmodel: LRU cache behaviour, disk timing,
// network cost accounting, and the latency structure of the three
// file-system performance models.

#include <gtest/gtest.h>

#include <cmath>

#include "fsmodel/disk.h"
#include "fsmodel/local_model.h"
#include "fsmodel/lru_cache.h"
#include "fsmodel/model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace wlgen::fsmodel {
namespace {

/// Executes one op's chain to completion and returns its response time.
double run_op(sim::Simulation& sim, FileSystemModel& model, const FsOp& op) {
  double elapsed = -1.0;
  sim::execute_chain(sim, model.plan(op), [&](double t) { elapsed = t; });
  sim.run();
  return elapsed;
}

FsOp read_op(std::uint64_t file, std::uint64_t offset, std::uint64_t size) {
  FsOp op;
  op.type = FsOpType::read;
  op.file_id = file;
  op.offset = offset;
  op.size = size;
  op.file_size = 1 << 20;
  return op;
}

TEST(LruCacheTest, HitMissAccounting) {
  LruCache cache(2);
  EXPECT_FALSE(cache.access(1));
  cache.insert(1);
  EXPECT_TRUE(cache.access(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_ratio(), 0.5);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.access(1);          // 1 is now most recent
  EXPECT_TRUE(cache.insert(3));  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruCacheTest, InsertRefreshesRecency) {
  LruCache cache(2);
  cache.insert(1);
  cache.insert(2);
  cache.insert(1);  // refresh, no eviction
  cache.insert(3);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache cache(4);
  cache.insert(1);
  cache.insert(2);
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW(LruCache(0), std::invalid_argument);
}

TEST(DiskModelTest, ServiceTimeComposition) {
  DiskParams p;
  p.avg_seek_us = 100.0;
  p.avg_rotation_us = 50.0;
  p.transfer_bytes_per_us = 2.0;
  DiskModel disk(p);
  EXPECT_DOUBLE_EQ(disk.io_time_us(200), 100.0 + 50.0 + 100.0);
  EXPECT_DOUBLE_EQ(disk.sequential_io_time_us(200), 25.0 + 100.0);
  EXPECT_LT(disk.sequential_io_time_us(4096), disk.io_time_us(4096));
}

TEST(NetworkTest, TransmissionAndLatency) {
  sim::Simulation sim;
  net::NetworkParams p;
  p.latency_us = 100.0;
  p.bandwidth_bytes_per_us = 10.0;
  p.per_message_overhead_bytes = 0;
  net::Network netw(sim, p);
  EXPECT_DOUBLE_EQ(netw.transmission_time_us(1000), 100.0);

  sim::StageChain chain;
  netw.append_message_stages(chain, 1000);
  double elapsed = -1.0;
  sim::execute_chain(sim, chain, [&](double t) { elapsed = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(elapsed, 200.0);  // transmit 100 + propagate 100
  EXPECT_EQ(netw.messages_sent(), 1u);
  EXPECT_EQ(netw.payload_bytes_sent(), 1000u);
}

TEST(NetworkTest, MediumContention) {
  sim::Simulation sim;
  net::NetworkParams p;
  p.latency_us = 0.0;
  p.bandwidth_bytes_per_us = 1.0;
  p.per_message_overhead_bytes = 0;
  net::Network netw(sim, p);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    sim::StageChain chain;
    netw.append_message_stages(chain, 100);
    sim::execute_chain(sim, chain, [&](double) { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 100.0);
  EXPECT_DOUBLE_EQ(done[1], 200.0);  // serialized on the shared medium
}

// ---------------------------------------------------------------------------
// NFS model.
// ---------------------------------------------------------------------------

TEST(NfsModelTest, ColdReadHitsDiskWarmReadDoesNot) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  const double cold = run_op(sim, nfs, read_op(1, 0, 1024));
  EXPECT_EQ(nfs.server_disk().completed(), 1u);
  const double warm = run_op(sim, nfs, read_op(1, 0, 1024));
  EXPECT_EQ(nfs.server_disk().completed(), 1u);  // no new disk I/O
  EXPECT_LT(warm, cold / 10.0);
  EXPECT_LT(warm, 1000.0);   // client hit: sub-millisecond
  EXPECT_GT(cold, 10000.0);  // cold miss: disk-dominated
}

TEST(NfsModelTest, ReadSpanningBlocksFetchesEachBlock) {
  sim::Simulation sim;
  NfsParams params;
  NfsModel nfs(sim, params);
  run_op(sim, nfs, read_op(1, 0, params.block_size * 3));
  EXPECT_EQ(nfs.server_disk().completed(), 3u);
}

TEST(NfsModelTest, ServerCacheServesSecondClientMiss) {
  sim::Simulation sim;
  NfsParams params;
  params.client_cache_blocks = 1;  // client forgets immediately
  NfsModel nfs(sim, params);
  run_op(sim, nfs, read_op(1, 0, 1024));
  run_op(sim, nfs, read_op(2, 0, 1024));  // evicts file 1's block from client
  const std::uint64_t disk_before = nfs.server_disk().completed();
  const double t = run_op(sim, nfs, read_op(1, 0, 1024));  // client miss, server hit
  EXPECT_EQ(nfs.server_disk().completed(), disk_before);
  EXPECT_GT(t, 1000.0);    // had to cross the network
  EXPECT_LT(t, 20000.0);   // but no disk access
}

TEST(NfsModelTest, AsyncWritesReturnFastButLoadServer) {
  sim::Simulation sim;
  NfsParams params;
  NfsModel nfs(sim, params);
  FsOp op;
  op.type = FsOpType::write;
  op.file_id = 9;
  op.offset = 0;
  op.size = params.block_size;  // a full block triggers a background flush
  double elapsed = -1.0;
  sim::execute_chain(sim, nfs.plan(op), [&](double t) { elapsed = t; });
  EXPECT_LT(elapsed, 0.0);  // still pending: response resolves on its own
  sim.run();
  EXPECT_LT(elapsed, 1000.0);                    // write-behind: fast response
  EXPECT_EQ(nfs.server_disk().completed(), 1u);  // flush hit the disk anyway
}

TEST(NfsModelTest, SyncWritesPayTheFullPath) {
  sim::Simulation sim;
  NfsParams params;
  params.async_writes = false;
  NfsModel nfs(sim, params);
  FsOp op;
  op.type = FsOpType::write;
  op.file_id = 9;
  op.size = 1024;
  const double t = run_op(sim, nfs, op);
  EXPECT_GT(t, 10000.0);  // network + server + synchronous disk
}

TEST(NfsModelTest, CloseFlushesDirtyData) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  FsOp write;
  write.type = FsOpType::write;
  write.file_id = 9;
  write.size = 100;  // less than a block: stays dirty
  run_op(sim, nfs, write);
  FsOp close;
  close.type = FsOpType::close;
  close.file_id = 9;
  const double t = run_op(sim, nfs, close);
  EXPECT_GT(t, 10000.0);  // synchronous flush on close
  const double t2 = run_op(sim, nfs, close);
  EXPECT_LT(t2, 1000.0);  // nothing left to flush
}

TEST(NfsModelTest, AttributeCacheMakesReopenCheap) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  FsOp open;
  open.type = FsOpType::open;
  open.file_id = 5;
  const double cold = run_op(sim, nfs, open);
  const double warm = run_op(sim, nfs, open);
  EXPECT_LT(warm, cold);
  EXPECT_LT(warm, 300.0);  // pure client-side
}

TEST(NfsModelTest, UnlinkInvalidatesAttributeCache) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  FsOp open;
  open.type = FsOpType::open;
  open.file_id = 5;
  run_op(sim, nfs, open);
  FsOp unlink;
  unlink.type = FsOpType::unlink;
  unlink.file_id = 5;
  run_op(sim, nfs, unlink);
  EXPECT_FALSE(nfs.client_attr_cache().contains(5));
}

TEST(NfsModelTest, MetadataMutationsHitDisk) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  for (const FsOpType type : {FsOpType::creat, FsOpType::unlink, FsOpType::mkdir}) {
    const std::uint64_t before = nfs.server_disk().completed();
    FsOp op;
    op.type = type;
    op.file_id = 77;
    run_op(sim, nfs, op);
    EXPECT_EQ(nfs.server_disk().completed(), before + 1) << to_string(type);
  }
}

TEST(NfsModelTest, LseekIsClientOnly) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  FsOp op;
  op.type = FsOpType::lseek;
  const double t = run_op(sim, nfs, op);
  EXPECT_LT(t, nfs.params().client_overhead_us);
  EXPECT_EQ(nfs.rpc_count(), 0u);
}

TEST(NfsModelTest, ContentionGrowsResponseTime) {
  // Two cold reads of different files issued together: the second queues
  // behind the first at the server disk — the Fig 5.6 mechanism in miniature.
  sim::Simulation sim;
  NfsModel nfs(sim);
  std::vector<double> elapsed;
  sim::execute_chain(sim, nfs.plan(read_op(1, 0, 1024)),
                     [&](double t) { elapsed.push_back(t); });
  sim::execute_chain(sim, nfs.plan(read_op(2, 0, 1024)),
                     [&](double t) { elapsed.push_back(t); });
  sim.run();
  ASSERT_EQ(elapsed.size(), 2u);
  EXPECT_GT(elapsed[1], elapsed[0] * 1.5);
}

TEST(NfsModelTest, ColdFirstReadDoesNotArmReadahead) {
  // Read-ahead arms only on a *proven* sequential stream (a continuation at
  // offset > 0) — a file's cold first access must not prefetch.
  sim::Simulation sim;
  NfsModel nfs(sim);
  run_op(sim, nfs, read_op(1, 0, 1024));
  EXPECT_EQ(nfs.readahead_count(), 0u);
  EXPECT_EQ(nfs.server_disk().completed(), 1u);
}

TEST(NfsModelTest, SequentialContinuationPrefetchesTheNextBlock) {
  sim::Simulation sim;
  NfsParams params;
  NfsModel nfs(sim, params);
  run_op(sim, nfs, read_op(1, 0, params.block_size));  // block 0, cold, no prefetch
  ASSERT_EQ(nfs.readahead_count(), 0u);
  // Continuation into block 1: its own fetch plus a background prefetch of
  // block 2.
  run_op(sim, nfs, read_op(1, params.block_size, 1024));
  EXPECT_EQ(nfs.readahead_count(), 1u);
  EXPECT_EQ(nfs.server_disk().completed(), 3u);
  // Jumping straight to the prefetched block is a client cache hit: no new
  // disk I/O, sub-millisecond response.
  const double hit = run_op(sim, nfs, read_op(1, 2 * params.block_size, 1024));
  EXPECT_EQ(nfs.server_disk().completed(), 3u);
  EXPECT_LT(hit, 1000.0);
}

TEST(NfsModelTest, ReadaheadStopsAtEof) {
  // A two-block file: the continuation into its last block has nothing left
  // to prefetch (the client holds the attributes and never reads past EOF).
  sim::Simulation sim;
  NfsParams params;
  NfsModel nfs(sim, params);
  FsOp op = read_op(1, 0, params.block_size);
  op.file_size = 2 * params.block_size;
  run_op(sim, nfs, op);
  op.offset = params.block_size;
  op.size = 1024;
  run_op(sim, nfs, op);
  EXPECT_EQ(nfs.readahead_count(), 0u);
  EXPECT_EQ(nfs.server_disk().completed(), 2u);
}

TEST(NfsModelTest, ReadaheadDisabledByParameter) {
  sim::Simulation sim;
  NfsParams params;
  params.readahead_blocks = 0;
  NfsModel nfs(sim, params);
  run_op(sim, nfs, read_op(1, 0, params.block_size));
  run_op(sim, nfs, read_op(1, params.block_size, 1024));
  EXPECT_EQ(nfs.readahead_count(), 0u);
  EXPECT_EQ(nfs.server_disk().completed(), 2u);
}

TEST(NfsModelTest, ResetStatsClearsCounters) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  run_op(sim, nfs, read_op(1, 0, 8192));
  run_op(sim, nfs, read_op(1, 8192, 1024));  // arms read-ahead
  ASSERT_GT(nfs.readahead_count(), 0u);
  nfs.reset_stats();
  EXPECT_EQ(nfs.rpc_count(), 0u);
  EXPECT_EQ(nfs.readahead_count(), 0u);
  EXPECT_EQ(nfs.client_cache().hits() + nfs.client_cache().misses(), 0u);
  EXPECT_FALSE(nfs.stats_summary().empty());
}

// ---------------------------------------------------------------------------
// Local-disk model.
// ---------------------------------------------------------------------------

TEST(LocalModelTest, CacheHitAvoidsDisk) {
  sim::Simulation sim;
  LocalDiskModel local(sim);
  const double cold = run_op(sim, local, read_op(1, 0, 1024));
  const std::uint64_t disk_ops = local.disk_resource().completed();
  const double warm = run_op(sim, local, read_op(1, 0, 1024));
  EXPECT_EQ(local.disk_resource().completed(), disk_ops);
  EXPECT_LT(warm, cold / 10.0);
}

TEST(LocalModelTest, WarmReadFasterThanNfsWarmRead) {
  sim::Simulation sim_local;
  LocalDiskModel local(sim_local);
  run_op(sim_local, local, read_op(1, 0, 1024));
  const double local_warm = run_op(sim_local, local, read_op(1, 0, 1024));

  sim::Simulation sim_nfs;
  NfsModel nfs(sim_nfs);
  run_op(sim_nfs, nfs, read_op(1, 0, 1024));
  const double nfs_warm = run_op(sim_nfs, nfs, read_op(1, 0, 1024));
  EXPECT_LT(local_warm, nfs_warm);
}

TEST(LocalModelTest, MetadataCachedAfterFirstTouch) {
  sim::Simulation sim;
  LocalDiskModel local(sim);
  FsOp op;
  op.type = FsOpType::open;
  op.file_id = 3;
  const double cold = run_op(sim, local, op);
  const double warm = run_op(sim, local, op);
  EXPECT_LT(warm, cold);
}

TEST(LocalModelTest, AsyncWriteFastPath) {
  sim::Simulation sim;
  LocalDiskModel local(sim);
  FsOp op;
  op.type = FsOpType::write;
  op.file_id = 3;
  op.size = 4096;
  double elapsed = -1.0;
  sim::execute_chain(sim, local.plan(op), [&](double t) { elapsed = t; });
  sim.run();
  EXPECT_LT(elapsed, 500.0);
  EXPECT_GE(local.disk_resource().completed(), 1u);  // flushed in background
}

// ---------------------------------------------------------------------------
// Whole-file (AFS-like) model.
// ---------------------------------------------------------------------------

TEST(WholeFileModelTest, OpenCostScalesWithFileSize) {
  sim::Simulation sim;
  WholeFileCacheModel afs(sim);
  FsOp small;
  small.type = FsOpType::open;
  small.file_id = 1;
  small.file_size = 1024;
  FsOp large;
  large.type = FsOpType::open;
  large.file_id = 2;
  large.file_size = 512 * 1024;
  const double t_small = run_op(sim, afs, small);
  const double t_large = run_op(sim, afs, large);
  EXPECT_GT(t_large, t_small * 5.0);
  EXPECT_EQ(afs.fetches(), 2u);
}

TEST(WholeFileModelTest, CachedOpenIsLocal) {
  sim::Simulation sim;
  WholeFileCacheModel afs(sim);
  FsOp open;
  open.type = FsOpType::open;
  open.file_id = 1;
  open.file_size = 64 * 1024;
  run_op(sim, afs, open);
  const double warm = run_op(sim, afs, open);
  EXPECT_LT(warm, 500.0);
  EXPECT_EQ(afs.fetches(), 1u);
}

TEST(WholeFileModelTest, ReadsAreLocalAfterFetch) {
  sim::Simulation sim;
  WholeFileCacheModel afs(sim);
  FsOp open;
  open.type = FsOpType::open;
  open.file_id = 1;
  open.file_size = 64 * 1024;
  run_op(sim, afs, open);
  const double read_t = run_op(sim, afs, read_op(1, 0, 8192));
  EXPECT_LT(read_t, 500.0);  // no network, no server disk
}

TEST(WholeFileModelTest, DirtyCloseStoresBack) {
  sim::Simulation sim;
  WholeFileCacheModel afs(sim);
  FsOp creat;
  creat.type = FsOpType::creat;
  creat.file_id = 7;
  run_op(sim, afs, creat);
  FsOp write;
  write.type = FsOpType::write;
  write.file_id = 7;
  write.size = 10000;
  run_op(sim, afs, write);
  FsOp close;
  close.type = FsOpType::close;
  close.file_id = 7;
  const double t = run_op(sim, afs, close);
  EXPECT_EQ(afs.stores(), 1u);
  EXPECT_GT(t, 10000.0);  // store-back crosses network + server disk
  // A clean close is local.
  const double t2 = run_op(sim, afs, close);
  EXPECT_LT(t2, 500.0);
  EXPECT_EQ(afs.stores(), 1u);
}

TEST(WholeFileModelTest, ModelNamesDistinct) {
  sim::Simulation sim;
  NfsModel nfs(sim);
  LocalDiskModel local(sim);
  WholeFileCacheModel afs(sim);
  EXPECT_EQ(nfs.name(), "nfs");
  EXPECT_EQ(local.name(), "local");
  EXPECT_EQ(afs.name(), "wholefile");
}

TEST(ModelOps, ToStringCoversAllOps) {
  for (const FsOpType type : {FsOpType::open, FsOpType::close, FsOpType::read, FsOpType::write,
                              FsOpType::creat, FsOpType::unlink, FsOpType::stat, FsOpType::lseek,
                              FsOpType::mkdir, FsOpType::readdir}) {
    EXPECT_STRNE(to_string(type), "unknown");
  }
  EXPECT_TRUE(is_data_op(FsOpType::read));
  EXPECT_TRUE(is_data_op(FsOpType::write));
  EXPECT_FALSE(is_data_op(FsOpType::open));
}

}  // namespace
}  // namespace wlgen::fsmodel
